//! The unified epoch engine: one pipeline for every allocation strategy.
//!
//! The paper's evaluation (§V-A) runs five very different allocation
//! mechanisms through the *same* protocol — initial allocation on the
//! training prefix, then per-epoch allocation updates, beacon commits and
//! metric collection over the evaluation epochs. [`EpochStrategy`] is the
//! seam between the protocol and the mechanisms:
//!
//! * the protocol lives in one place per trace-ownership model:
//!   [`run_with`] / [`run_with_observer`] drive it over a resident
//!   trace, [`run_streamed_with_observer`] over a bounded-memory
//!   [`EpochWindowStream`] — with byte-identical metric output;
//! * every mechanism is an [`EpochStrategy`] implementation — a blanket
//!   impl adapts any miner-driven [`GlobalAllocator`] (Metis, G-TxAllo),
//!   [`StaticStrategy`] wraps rule-only allocation (hash-based Random),
//!   [`AdaptiveTxAllo`] wraps the incremental A-TxAllo update, and
//!   [`MosaicStrategy`] wraps the client-driven [`MosaicFramework`];
//! * adding a sixth strategy requires a new impl plus a registry entry
//!   ([`crate::Strategy::build`]) — the protocol is untouched.
//!
//! The engine also owns the evaluation hot path:
//!
//! * the historical graph is accreted **incrementally** ([`History`]):
//!   epoch windows append as borrowed slices in O(1), and
//!   [`History::graph`] folds only the not-yet-merged delta into a
//!   maintained CSR via [`TxGraph::merge_delta`] — per-epoch work is
//!   proportional to the window, never a full `GraphBuilder::build`
//!   rebuild of the whole history (the rebuild stays available in
//!   `mosaic-txgraph` as the reference oracle the delta path is
//!   proptested against). Strategies that never look at the history
//!   (Mosaic, Random, A-TxAllo) still pay nothing;
//! * within a cell, epoch processing parallelises over the order-stable
//!   pool ([`crate::parallel`]) with byte-identical output
//!   ([`crate::runner::ExperimentConfig::cell_parallelism`]);
//! * per-epoch metric rows can be **streamed** to any sink instead of
//!   accumulated ([`run_with_observer`]), so the paper's `full`
//!   200-epoch protocol runs in bounded memory
//!   (`mosaic_metrics::EpochCsvWriter` + `runner::run_streaming`).

use std::time::Duration;

use mosaic_chain::Ledger;
use mosaic_core::{ClientPolicy, MosaicFramework};
use mosaic_metrics::data_size::miner_input_bytes;
use mosaic_metrics::timing::time_it;
use mosaic_metrics::{Aggregate, EpochLoad, EpochMetrics, LoadParams};
use mosaic_partition::GlobalAllocator;
use mosaic_txallo::{ATxAllo, GTxAllo, TxAlloConfig};
use mosaic_txgraph::{GraphBuilder, TxGraph};
use mosaic_types::{AccountShardMap, BlockHeight, Error, Result, SystemParams, Transaction};
use mosaic_workload::{EpochWindowStream, TransactionTrace};

use crate::alloc_core::{skips_training_graph, AllocationCore, TrainingFold};
use crate::parallel::Parallelism;
use crate::runner::{ExperimentConfig, ExperimentResult};

/// Incrementally accreted transaction history.
///
/// Epoch windows are appended as borrowed slices in O(1). The
/// interaction graph is maintained as a long-lived CSR: when a strategy
/// asks for it, the pending windows are drained into a per-window delta
/// builder and sort-merged into the existing buffers
/// ([`TxGraph::merge_delta`]) — O(window + touched adjacency) per epoch
/// instead of the O(V + E) full rebuild the evaluation previously paid.
/// Strategies that never ask (Mosaic, Random, A-TxAllo) pay nothing.
#[derive(Debug, Default)]
pub struct History<'t> {
    /// Accumulates only the not-yet-merged windows (drained each merge).
    delta: GraphBuilder,
    pending: Vec<&'t [Transaction]>,
    /// The maintained full-history CSR, grown in place.
    graph: TxGraph,
    txs: usize,
}

impl<'t> History<'t> {
    /// An empty history.
    pub fn new() -> Self {
        History::default()
    }

    /// Appends committed transactions (O(1); accretion is deferred until
    /// [`History::graph`]).
    pub fn extend(&mut self, txs: &'t [Transaction]) {
        if txs.is_empty() {
            return;
        }
        self.pending.push(txs);
        self.txs += txs.len();
    }

    /// Total transactions in the history (including not-yet-merged
    /// windows).
    pub fn len(&self) -> usize {
        self.txs
    }

    /// Returns `true` if no transaction has been recorded.
    pub fn is_empty(&self) -> bool {
        self.txs == 0
    }

    /// Drains pending windows into the delta builder (hash-map
    /// accumulation, the part a miner amortises while blocks commit).
    /// Separated from the CSR merge so strategies can keep it *outside*
    /// their timed region while paying for the [`History::graph`] merge
    /// inside it.
    pub fn accrete(&mut self) {
        for window in self.pending.drain(..) {
            self.delta.add_transactions(window);
        }
    }

    /// Folds `txs` straight into the delta builder without retaining the
    /// slice — equivalent to [`History::extend`] + [`History::accrete`],
    /// but borrowing nothing. The streamed epoch loop uses this so each
    /// window buffer can be dropped (or reused) the moment it has been
    /// absorbed; accumulation order equals slice order, so chunked
    /// absorption builds the identical graph to one monolithic extend.
    pub fn absorb(&mut self, txs: &[Transaction]) {
        if txs.is_empty() {
            return;
        }
        self.delta.add_transactions(txs);
        self.txs += txs.len();
    }

    /// Records `n` transactions as part of the history *without* keeping
    /// them. The streamed loop uses this for strategies that never
    /// consult the graph ([`EpochStrategy::consumes_history`] = `false`),
    /// keeping [`History::len`]-based accounting (e.g. miner input
    /// bytes) identical to the materialised run while storing nothing.
    pub fn record_unretained(&mut self, n: usize) {
        self.txs += n;
    }

    /// Frees the graph state (maintained CSR, delta builder, pending
    /// windows) while keeping the transaction count. The streamed loop
    /// calls this right after the initial allocation when the strategy
    /// will never consult the history again — from then on the session's
    /// footprint is bounded by the current + recent window alone.
    pub fn release(&mut self) {
        self.delta = GraphBuilder::default();
        self.pending = Vec::new();
        self.graph = TxGraph::default();
    }

    /// The full-history interaction graph, maintained incrementally.
    ///
    /// Drains pending windows and sort-merges the accumulated delta into
    /// the long-lived CSR; with nothing pending this is a cache hit.
    pub fn graph(&mut self) -> &TxGraph {
        self.accrete();
        if self.delta.vertex_count() > 0 {
            let delta = self.delta.drain_delta();
            self.graph.merge_delta(&delta);
        }
        &self.graph
    }
}

/// Everything a strategy may look at before an epoch is processed.
///
/// The window lifetime `'w` is independent of the history lifetime `'t`:
/// the materialised loop borrows both from the resident trace, while the
/// streamed loop hands out windows borrowed from short-lived buffers
/// against a history that retains nothing.
#[derive(Debug)]
pub struct EpochCtx<'e, 'w, 't> {
    /// The upcoming epoch's transactions (the mempool the oracle sees).
    pub window: &'w [Transaction],
    /// The previous epoch's transactions (the recent window incremental
    /// strategies consume; initially the last τ blocks of training).
    pub recent_window: &'w [Transaction],
    /// The committed history up to (excluding) this epoch.
    pub history: &'e mut History<'t>,
    /// System parameters of the experiment cell.
    pub params: SystemParams,
    /// Worker-pool sizing for within-cell work this strategy dispatches
    /// (e.g. workload classification); byte-identical at every level.
    pub parallelism: Parallelism,
}

/// How an epoch's account moves are counted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MigrationCount {
    /// The strategy moved accounts itself (allocation-diff moves of a
    /// miner-driven update); the engine records this number.
    Moves(usize),
    /// The strategy submitted migration requests to the beacon chain; the
    /// engine counts the requests the ledger actually commits.
    CommittedRequests,
}

/// What a strategy decided for the upcoming epoch.
#[derive(Debug)]
pub struct EpochDecision {
    /// A full replacement ϕ to install before processing (miner-driven
    /// recomputation), or `None` if the allocation evolves through the
    /// beacon chain or not at all.
    pub new_phi: Option<AccountShardMap>,
    /// How this epoch's migrations are counted.
    pub migrations: MigrationCount,
    /// Wall-clock cost of this epoch's allocation work: the full
    /// recomputation for miner-driven strategies, the *mean per-client*
    /// decision time for client-driven ones (the quantity Table IV
    /// compares). `None` records no timing sample.
    pub alloc_time: Option<Duration>,
    /// Bytes of input the allocation consumed (per client for
    /// client-driven strategies). `None` records no sample.
    pub input_bytes: Option<f64>,
}

impl EpochDecision {
    /// A decision that changes nothing and records a zero-cost sample
    /// (static strategies).
    pub fn unchanged() -> Self {
        EpochDecision {
            new_phi: None,
            migrations: MigrationCount::Moves(0),
            alloc_time: Some(Duration::ZERO),
            input_bytes: None,
        }
    }
}

/// One allocation mechanism under the §V-A evaluation protocol.
///
/// Implementations must be deterministic: the parallel experiment grid
/// relies on every cell producing identical results regardless of
/// scheduling (see `experiments::tests::parallel_grid_matches_sequential`).
pub trait EpochStrategy {
    /// Display name for reports.
    fn name(&self) -> &'static str;

    /// `true` for client-driven strategies (allocation evolves through
    /// migration requests on the beacon chain; migrations are counted
    /// from beacon commits rather than reported by the strategy).
    fn is_client_driven(&self) -> bool {
        false
    }

    /// Ingests one chunk of the training prefix, in block order, before
    /// [`EpochStrategy::initial_allocation`] runs. The materialised loop
    /// calls this once with the whole prefix; the streamed loop calls it
    /// per τ-block chunk. Implementations must be chunking-invariant:
    /// a sequence of calls in order is equivalent to one call on the
    /// concatenation. Default: ignore (graph strategies read the
    /// training data from `history` instead).
    fn observe_training(&mut self, chunk: &[Transaction]) {
        let _ = chunk;
    }

    /// Computes the initial ϕ from the training prefix and returns it
    /// with the wall-clock time of the allocation itself. `history`
    /// already contains exactly the training transactions, and
    /// [`EpochStrategy::observe_training`] has already seen them.
    fn initial_allocation(
        &mut self,
        history: &mut History<'_>,
        k: u16,
    ) -> (AccountShardMap, Duration);

    /// `true` if the strategy consults [`EpochCtx::history`] after the
    /// initial allocation. Strategies that never do (client-driven
    /// Mosaic, the static hash baseline, incremental A-TxAllo) return
    /// `false`, which lets the streamed loop free the accreted graph and
    /// stop retaining windows — the memory bound the 10M-account
    /// scenarios rely on.
    fn consumes_history(&self) -> bool {
        true
    }

    /// `true` if [`EpochStrategy::initial_allocation`] reads the
    /// training graph ([`History::graph`]). Strategies returning
    /// `false` promise an identical initial ϕ for *any* graph content —
    /// including the empty graph — which, combined with
    /// [`EpochStrategy::consumes_history`] `= false`, lets the streamed
    /// pipeline skip training-graph edge accumulation entirely
    /// ([`crate::alloc_core::skips_training_graph`]): no delta builder,
    /// no CSR, just the transaction count. Only the rule-only hash
    /// baseline qualifies today; the default is conservative.
    fn needs_training_graph(&self) -> bool {
        true
    }

    /// Runs the strategy's allocation step for the upcoming epoch. Called
    /// once per evaluation epoch, *before* the ledger processes
    /// `ctx.window`; client-driven strategies submit their migration
    /// requests to `ledger` here.
    fn before_epoch(&mut self, ledger: &mut Ledger, ctx: EpochCtx<'_, '_, '_>) -> EpochDecision;

    /// Observes the committed window after the ledger processed it
    /// (client-driven strategies fold it into client histories).
    fn after_epoch(&mut self, window: &[Transaction]) {
        let _ = window;
    }
}

/// Counts accounts whose shard differs between `old` and `new` (the
/// implicit migrations a miner-driven update causes).
pub fn allocation_diff(old: &AccountShardMap, new: &AccountShardMap) -> usize {
    new.iter()
        .filter(|&(account, shard)| old.shard_of(account) != shard)
        .count()
}

/// Blanket adapter: every miner-driven [`GlobalAllocator`] is an
/// [`EpochStrategy`] that recomputes ϕ on the full history each epoch
/// (the paper's "global optimization" row of Table VI). The graph
/// materialisation happens inside the timed region, exactly as a miner
/// recomputing from its replicated history would pay for it.
///
/// The per-epoch recomputation runs through
/// [`GlobalAllocator::allocate_with`] with the cell's parallelism knob
/// ([`EpochCtx::parallelism`]), so Metis- and TxAllo-style allocators
/// fan their scoring scans over the order-stable pool; the result is
/// bit-identical at every worker count, which keeps experiment CSVs
/// byte-stable (enforced by the determinism CI job). The initial
/// (training-prefix) allocation stays sequential — it runs once per
/// cell and grids already parallelise across cells.
impl<A: GlobalAllocator> EpochStrategy for A {
    fn name(&self) -> &'static str {
        GlobalAllocator::name(self)
    }

    fn initial_allocation(
        &mut self,
        history: &mut History<'_>,
        k: u16,
    ) -> (AccountShardMap, Duration) {
        let graph = history.graph();
        time_it(|| self.allocate(graph, k))
    }

    fn before_epoch(&mut self, ledger: &mut Ledger, ctx: EpochCtx<'_, '_, '_>) -> EpochDecision {
        let input_bytes = miner_input_bytes(ctx.history.len()) as f64;
        // Hash-map accumulation happens outside the timed region (a
        // miner folds blocks in as they commit); the delta merge into
        // the maintained CSR + the allocation is the per-epoch
        // recomputation Table IV measures, so both run inside `time_it`.
        ctx.history.accrete();
        let history = &mut *ctx.history;
        let k = ctx.params.shards();
        let parallelism = ctx.parallelism;
        let (phi, elapsed) = time_it(|| {
            let graph = history.graph();
            self.allocate_with(graph, k, parallelism)
        });
        let moved = allocation_diff(ledger.phi(), &phi);
        EpochDecision {
            new_phi: Some(phi),
            migrations: MigrationCount::Moves(moved),
            alloc_time: Some(elapsed),
            input_bytes: Some(input_bytes),
        }
    }
}

/// Adapter for rule-only allocation (the paper's hash-based "Random"
/// baseline): the initial allocation runs once, then nothing ever moves
/// and every epoch records a zero-cost sample.
#[derive(Debug, Clone)]
pub struct StaticStrategy<A> {
    allocator: A,
}

impl<A: GlobalAllocator> StaticStrategy<A> {
    /// Wraps `allocator` as a never-recomputing strategy.
    pub fn new(allocator: A) -> Self {
        StaticStrategy { allocator }
    }
}

impl<A: GlobalAllocator> EpochStrategy for StaticStrategy<A> {
    fn name(&self) -> &'static str {
        self.allocator.name()
    }

    fn initial_allocation(
        &mut self,
        history: &mut History<'_>,
        k: u16,
    ) -> (AccountShardMap, Duration) {
        let graph = history.graph();
        time_it(|| self.allocator.allocate(graph, k))
    }

    fn consumes_history(&self) -> bool {
        false
    }

    fn needs_training_graph(&self) -> bool {
        // Rule-only allocators (hash-based Random) never read the
        // graph, so the streamed pipeline can skip building it.
        self.allocator.uses_graph()
    }

    fn before_epoch(&mut self, _ledger: &mut Ledger, _ctx: EpochCtx<'_, '_, '_>) -> EpochDecision {
        EpochDecision::unchanged()
    }
}

/// Adapter for the incremental A-TxAllo baseline: the initial ϕ is
/// G-TxAllo's result on the training prefix (§V-B), then each epoch only
/// the accounts active in the recent window are re-placed.
#[derive(Debug, Clone)]
pub struct AdaptiveTxAllo {
    init: GTxAllo,
    update: ATxAllo,
}

impl AdaptiveTxAllo {
    /// Builds the adapter from a shared TxAllo configuration.
    pub fn new(config: TxAlloConfig) -> Self {
        AdaptiveTxAllo {
            init: GTxAllo::new(config),
            update: ATxAllo::new(config),
        }
    }
}

impl EpochStrategy for AdaptiveTxAllo {
    fn name(&self) -> &'static str {
        "A-TxAllo"
    }

    fn initial_allocation(
        &mut self,
        history: &mut History<'_>,
        k: u16,
    ) -> (AccountShardMap, Duration) {
        let graph = history.graph();
        time_it(|| self.init.allocate(graph, k))
    }

    fn consumes_history(&self) -> bool {
        false
    }

    fn before_epoch(&mut self, ledger: &mut Ledger, ctx: EpochCtx<'_, '_, '_>) -> EpochDecision {
        let mut phi = ledger.phi().clone();
        let (moved, elapsed) = time_it(|| {
            self.update
                .update_with(&mut phi, ctx.recent_window, ctx.parallelism)
        });
        EpochDecision {
            new_phi: Some(phi),
            migrations: MigrationCount::Moves(moved),
            alloc_time: Some(elapsed),
            input_bytes: Some(miner_input_bytes(ctx.recent_window.len()) as f64),
        }
    }
}

/// Adapter for the client-driven Mosaic framework with an arbitrary
/// client policy — [`mosaic_core::policy::PilotPolicy`] reproduces the
/// paper; the other policies in [`mosaic_core::policy`] ablate Pilot's
/// two decision signals.
///
/// Each epoch follows §V-A: the oracle publishes `Ω` from the upcoming
/// window under the current ϕ, clients receive their β-sample of
/// expected transactions, every client runs its policy and proposes
/// migrations, the ledger commits ≤ λ of them while processing the
/// window, and clients observe the committed transactions.
#[derive(Debug, Clone)]
pub struct MosaicStrategy<P> {
    params: SystemParams,
    framework: MosaicFramework<P>,
    init: GTxAllo,
}

impl<P: ClientPolicy> MosaicStrategy<P> {
    /// Builds the client population for one experiment cell.
    pub fn new(params: SystemParams, policy: P) -> Self {
        MosaicStrategy {
            params,
            framework: MosaicFramework::with_policy(params, policy),
            init: GTxAllo::new(TxAlloConfig::with_eta(params.eta())),
        }
    }
}

impl<P: ClientPolicy> EpochStrategy for MosaicStrategy<P> {
    fn name(&self) -> &'static str {
        "Pilot"
    }

    fn is_client_driven(&self) -> bool {
        true
    }

    fn observe_training(&mut self, chunk: &[Transaction]) {
        // §V-B: clients preload their histories from the training
        // transactions. `observe_epoch` is a per-transaction fold in
        // slice order, so chunked ingestion is chunking-invariant.
        self.framework.observe_epoch(chunk);
    }

    fn initial_allocation(
        &mut self,
        history: &mut History<'_>,
        k: u16,
    ) -> (AccountShardMap, Duration) {
        // §V-B: ϕ is initialised with G-TxAllo's result.
        let graph = history.graph();
        time_it(|| self.init.allocate(graph, k))
    }

    fn consumes_history(&self) -> bool {
        false
    }

    fn before_epoch(&mut self, ledger: &mut Ledger, ctx: EpochCtx<'_, '_, '_>) -> EpochDecision {
        // The client population was sized and seeded from construction
        // params; running it under a different cell would silently skew Ω
        // (or index out of shard bounds), so mismatches fail loudly.
        assert_eq!(
            ctx.params, self.params,
            "MosaicStrategy was built with different SystemParams than the experiment cell"
        );

        // Step 1: mempool-derived workload distribution Ω (§V-A),
        // classified in parallel chunks on large windows.
        let lambda = ctx.params.lambda(ctx.window.len());
        let omega = EpochLoad::compute_with(
            ctx.window,
            LoadParams {
                shards: ctx.params.shards(),
                eta: ctx.params.eta(),
                lambda,
            },
            |a| ledger.phi().shard_of(a),
            ctx.parallelism,
        )
        .workload_vector();

        // Step 2: future knowledge (β-sample of the upcoming window).
        self.framework.set_expectations(ctx.window);

        // Step 3: every client proposes; requests land on the beacon.
        let report = self.framework.propose(ledger, &omega);

        EpochDecision {
            new_phi: None,
            migrations: MigrationCount::CommittedRequests,
            alloc_time: Some(report.mean_decision_time),
            input_bytes: Some(report.mean_input_bytes),
        }
    }

    fn after_epoch(&mut self, window: &[Transaction]) {
        self.framework.observe_epoch(window);
    }
}

/// The aggregated outcome of a run whose per-epoch rows were handed to
/// an observer instead of collected — everything
/// [`crate::runner::ExperimentResult`] carries except the row vector.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunSummary {
    /// Means over the evaluation epochs (bit-identical to
    /// [`Aggregate::over`] on the observed rows in order).
    pub aggregate: Aggregate,
    /// Number of evaluation epochs processed.
    pub epochs: usize,
    /// Wall-clock seconds of the initial (training-prefix) allocation.
    pub init_seconds: f64,
    /// Mean per-epoch allocation runtime in seconds.
    pub mean_alloc_seconds: f64,
    /// Mean bytes of input per allocation run.
    pub mean_input_bytes: f64,
    /// Total account moves over the evaluation.
    pub total_migrations: usize,
}

/// Runs one experiment cell with an explicit strategy — **the** epoch
/// loop of the crate. [`crate::runner::run`] resolves the strategy from
/// the registry and delegates here; custom strategies (new mechanisms,
/// ablation policies) are passed in directly.
///
/// Collects the per-epoch rows in memory; for arbitrarily long
/// protocols use [`run_with_observer`] (or
/// [`crate::runner::run_streaming`]) and stream each row to a sink as
/// it is produced.
///
/// # Panics
///
/// Panics if the trace is empty.
pub fn run_with(
    config: &ExperimentConfig,
    trace: &TransactionTrace,
    strategy: &mut dyn EpochStrategy,
) -> ExperimentResult {
    let mut per_epoch = Vec::with_capacity(config.eval_epochs);
    let summary = run_with_observer(config, trace, strategy, &mut |_, metrics: &EpochMetrics| {
        per_epoch.push(*metrics);
        true
    });
    ExperimentResult {
        strategy: config.strategy,
        params: config.params,
        aggregate: summary.aggregate,
        per_epoch,
        init_seconds: summary.init_seconds,
        mean_alloc_seconds: summary.mean_alloc_seconds,
        mean_input_bytes: summary.mean_input_bytes,
        total_migrations: summary.total_migrations,
    }
}

/// [`run_with`], but each evaluation epoch's metric row is handed to
/// `on_epoch(epoch_index, row)` the moment it is computed instead of
/// being accumulated — the engine itself holds O(1) metric state
/// (a running [`AggregateBuilder`]), so the `full` 200-epoch protocol
/// (and anything longer) runs in bounded memory when the observer
/// streams rows to disk.
///
/// The observer returns whether to **continue**: returning `false`
/// aborts the run after the current epoch (its row is already included
/// in the summary), so a sink failure doesn't burn the rest of a long
/// protocol. [`RunSummary::epochs`] reports how far the run got.
///
/// # Panics
///
/// Panics if the trace is empty.
pub fn run_with_observer(
    config: &ExperimentConfig,
    trace: &TransactionTrace,
    strategy: &mut dyn EpochStrategy,
    on_epoch: &mut dyn FnMut(usize, &EpochMetrics) -> bool,
) -> RunSummary {
    assert!(!trace.is_empty(), "experiment needs a non-empty trace");
    let tau = config.params.tau();

    let (train, _eval) = trace.split_at_fraction(config.train_fraction);
    let max_block = trace.max_block().expect("non-empty trace");
    let cut_block = BlockHeight::new(
        (((max_block.as_u64() + 1) as f64) * config.train_fraction).floor() as u64,
    );

    let mut core = AllocationCore::new(*config);
    core.ingest_training(strategy, train);
    core.finish_training(strategy)
        .expect("consistent shard counts");

    // The first "recent window" is the last τ blocks of training.
    let mut recent_window = trace.block_range(
        BlockHeight::new(cut_block.as_u64().saturating_sub(u64::from(tau))),
        cut_block,
    );

    for (epoch, window) in trace
        .epoch_windows(cut_block, tau)
        .take(config.eval_epochs)
        .enumerate()
    {
        let metrics = core.process_epoch(strategy, window, recent_window);
        if !on_epoch(epoch, &metrics) {
            break;
        }
        core.commit_window_retained(strategy, window);
        recent_window = window;
    }

    core.summary()
}

/// [`run_with_observer`] over an [`EpochWindowStream`] instead of a
/// resident trace — the same §V-A protocol, byte-identical metric rows,
/// but the session owns at most the current and recent window (plus the
/// incremental CSR while the strategy still consumes it; strategies with
/// [`EpochStrategy::consumes_history`] `= false` free even that right
/// after the initial allocation). Trace size never bounds memory.
///
/// The training prefix is consumed in τ-block chunks: each chunk is
/// handed to [`EpochStrategy::observe_training`], absorbed into the
/// history's delta builder, merged into the maintained CSR, and dropped.
/// Both `observe_training` and graph accretion are chunking-invariant
/// folds in block order, and the per-epoch metric rows carry no timing
/// fields, so the streamed run's CSV output is byte-identical to the
/// materialised run's wherever both exist (proptested in
/// `tests/scenario_equivalence.rs`).
///
/// # Errors
///
/// [`Error::EmptyTrace`] if the stream spans no blocks (the materialised
/// loop panics instead — a resident empty trace is a programming error,
/// a streamed one may be a bad file); otherwise propagates stream read
/// errors ([`Error::ParseTrace`] / [`Error::Io`]).
pub fn run_streamed_with_observer(
    config: &ExperimentConfig,
    stream: &mut EpochWindowStream,
    strategy: &mut dyn EpochStrategy,
    on_epoch: &mut dyn FnMut(usize, &EpochMetrics) -> bool,
) -> Result<RunSummary> {
    let tau = config.params.tau();
    let blocks = stream.blocks();
    if blocks == 0 {
        return Err(Error::EmptyTrace);
    }
    let max_block = blocks - 1;
    let cut_block = ((blocks as f64) * config.train_fraction).floor() as u64;
    let recent_start = cut_block.saturating_sub(u64::from(tau));

    // Training prefix, chunked: blocks [0, cut − τ) pass through a single
    // reused buffer; [cut − τ, cut) is kept — it becomes the first
    // "recent window", exactly as in the materialised loop. Strategies
    // whose initial allocation never reads the graph skip edge
    // accumulation entirely (TrainingFold::Skip).
    let mut core = AllocationCore::new(*config);
    let skip_graph = skips_training_graph(strategy);
    let chunk_blocks = u64::from(tau);
    let mut buf: Vec<Transaction> = Vec::new();
    while stream.position() < recent_start {
        let to = (stream.position() + chunk_blocks).min(recent_start);
        buf.clear();
        stream.read_to(to, &mut buf)?;
        let fold = if skip_graph {
            TrainingFold::Skip
        } else {
            TrainingFold::Merge
        };
        core.ingest_training_chunk(strategy, &buf, fold);
    }
    let mut recent: Vec<Transaction> = Vec::new();
    stream.read_to(cut_block, &mut recent)?;
    let fold = if skip_graph {
        TrainingFold::Skip
    } else {
        TrainingFold::Defer
    };
    core.ingest_training_chunk(strategy, &recent, fold);

    core.finish_training(strategy)
        .expect("consistent shard counts");
    core.release_history_if_unused(strategy);

    let mut window: Vec<Transaction> = Vec::new();
    let mut start = cut_block;
    for epoch in 0..config.eval_epochs {
        // Same termination rule as `TransactionTrace::epoch_windows`:
        // yield (possibly empty) windows while their start is in range.
        if start > max_block {
            break;
        }
        window.clear();
        stream.read_to(start + u64::from(tau), &mut window)?;
        let metrics = core.process_epoch(strategy, &window, &recent);
        if !on_epoch(epoch, &metrics) {
            break;
        }
        core.commit_window_owned(strategy, &window);
        // The processed window becomes the next epoch's recent window;
        // the old recent buffer is reused for the next read.
        std::mem::swap(&mut recent, &mut window);
        start += u64::from(tau);
    }

    Ok(core.summary())
}

#[cfg(test)]
mod tests {
    use super::*;
    use mosaic_core::policy::PilotPolicy;
    use mosaic_partition::HashAllocator;
    use mosaic_types::{AccountId, TxId};

    fn tx(id: u64, from: u64, to: u64, block: u64) -> Transaction {
        Transaction::new(
            TxId::new(id),
            AccountId::new(from),
            AccountId::new(to),
            BlockHeight::new(block),
        )
    }

    #[test]
    fn history_accretes_lazily() {
        let a: Vec<Transaction> = (0..10).map(|i| tx(i, 1, 2, i)).collect();
        let b: Vec<Transaction> = (10..14).map(|i| tx(i, 2, 3, i)).collect();
        let mut h = History::new();
        assert!(h.is_empty());
        h.extend(&a);
        h.extend(&b);
        assert_eq!(h.len(), 14);
        let edge_count = h.graph().edge_count();
        assert_eq!(edge_count, 2);
        // Cached: a second call cheaply returns the same snapshot.
        assert_eq!(h.graph().edge_count(), edge_count);
    }

    #[test]
    fn strategies_report_their_kind() {
        let params = SystemParams::builder().shards(4).tau(10).build().unwrap();
        let mosaic = MosaicStrategy::new(params, PilotPolicy);
        assert!(mosaic.is_client_driven());
        assert_eq!(mosaic.name(), "Pilot");
        let adaptive = AdaptiveTxAllo::new(TxAlloConfig::with_eta(2.0));
        assert!(!adaptive.is_client_driven());
        let hash = StaticStrategy::new(HashAllocator::chainspace());
        assert_eq!(hash.name(), "Random");
        // The blanket impl adapts any GlobalAllocator.
        let g: &dyn EpochStrategy = &GTxAllo::new(TxAlloConfig::with_eta(2.0));
        assert_eq!(g.name(), "G-TxAllo");
        assert!(!g.is_client_driven());
    }

    #[test]
    fn unchanged_decision_is_truly_inert() {
        let d = EpochDecision::unchanged();
        assert!(d.new_phi.is_none());
        assert_eq!(d.migrations, MigrationCount::Moves(0));
        assert_eq!(d.alloc_time, Some(Duration::ZERO));
        assert!(d.input_bytes.is_none());
    }
}
