//! The allocation strategies under evaluation, and the registry mapping
//! them to [`EpochStrategy`] implementations.

use std::fmt;

use mosaic_core::policy::PilotPolicy;
use mosaic_partition::{HashAllocator, MetisPartitioner};
use mosaic_txallo::{GTxAllo, TxAlloConfig};
use mosaic_types::SystemParams;

use crate::engine::{AdaptiveTxAllo, EpochStrategy, MosaicStrategy, StaticStrategy};

/// One of the five allocation strategies the paper evaluates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Strategy {
    /// Client-driven: Mosaic framework with every client running Pilot.
    Mosaic,
    /// Miner-driven: G-TxAllo recomputed on the full history each epoch.
    GTxAllo,
    /// Miner-driven: A-TxAllo incremental update on the recent window.
    ATxAllo,
    /// Miner-driven: multilevel Metis-like partitioning of the full
    /// history each epoch.
    Metis,
    /// Static hash-based allocation (`SHA256(address) mod k`).
    Random,
}

impl Strategy {
    /// All strategies, in the report order of the paper's tables.
    pub const ALL: [Strategy; 5] = [
        Strategy::Mosaic,
        Strategy::GTxAllo,
        Strategy::ATxAllo,
        Strategy::Metis,
        Strategy::Random,
    ];

    /// The display name used in tables (the paper labels Mosaic's
    /// measurements "Pilot").
    pub fn name(&self) -> &'static str {
        match self {
            Strategy::Mosaic => "Pilot",
            Strategy::GTxAllo => "G-TxAllo",
            Strategy::ATxAllo => "A-TxAllo",
            Strategy::Metis => "Metis",
            Strategy::Random => "Random",
        }
    }

    /// `true` for the client-driven strategy (allocation via migration
    /// requests on the beacon chain rather than miner recomputation).
    pub fn is_client_driven(&self) -> bool {
        matches!(self, Strategy::Mosaic)
    }

    /// `true` for strategies that never react to transaction patterns.
    pub fn is_static(&self) -> bool {
        matches!(self, Strategy::Random)
    }

    /// The registry: resolves this strategy to its [`EpochStrategy`]
    /// implementation for one experiment cell. This is the *only* place
    /// the five paper strategies are matched — the epoch protocol itself
    /// ([`crate::engine::run_with`]) is strategy-agnostic, so adding a
    /// sixth mechanism means implementing [`EpochStrategy`] and (if it
    /// should appear in the tables) adding one arm here.
    pub fn build(&self, params: SystemParams) -> Box<dyn EpochStrategy> {
        let txallo_cfg = TxAlloConfig::with_eta(params.eta());
        match self {
            Strategy::Mosaic => Box::new(MosaicStrategy::new(params, PilotPolicy)),
            Strategy::GTxAllo => Box::new(GTxAllo::new(txallo_cfg)),
            Strategy::ATxAllo => Box::new(AdaptiveTxAllo::new(txallo_cfg)),
            Strategy::Metis => Box::new(MetisPartitioner::default()),
            Strategy::Random => Box::new(StaticStrategy::new(HashAllocator::chainspace())),
        }
    }
}

impl fmt::Display for Strategy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for Strategy {
    type Err = mosaic_types::Error;

    /// Parses a table display name (`"Pilot"`, `"G-TxAllo"`, …), the
    /// inverse of [`Strategy::name`]. `"Mosaic"` is accepted as an alias
    /// for the client-driven strategy.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        if s == "Mosaic" {
            return Ok(Strategy::Mosaic);
        }
        Strategy::ALL
            .into_iter()
            .find(|strategy| strategy.name() == s)
            .ok_or_else(|| {
                let valid: Vec<&str> = Strategy::ALL.iter().map(|s| s.name()).collect();
                mosaic_types::Error::ParseScenario {
                    line: 0,
                    message: format!("unknown strategy {s:?}; valid names: {valid:?}"),
                }
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_unique() {
        let mut names: Vec<&str> = Strategy::ALL.iter().map(|s| s.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), Strategy::ALL.len());
    }

    #[test]
    fn names_parse_back() {
        for strategy in Strategy::ALL {
            assert_eq!(strategy.name().parse::<Strategy>().unwrap(), strategy);
        }
        assert_eq!("Mosaic".parse::<Strategy>().unwrap(), Strategy::Mosaic);
        let err = "NoSuchStrategy".parse::<Strategy>().unwrap_err();
        assert!(err.to_string().contains("unknown strategy"));
    }

    #[test]
    fn classification() {
        assert!(Strategy::Mosaic.is_client_driven());
        assert!(!Strategy::GTxAllo.is_client_driven());
        assert!(Strategy::Random.is_static());
        assert!(!Strategy::Mosaic.is_static());
        assert_eq!(Strategy::Mosaic.to_string(), "Pilot");
    }

    #[test]
    fn registry_agrees_with_enum_metadata() {
        let params = mosaic_types::SystemParams::builder()
            .shards(4)
            .tau(10)
            .build()
            .unwrap();
        for strategy in Strategy::ALL {
            let built = strategy.build(params);
            assert_eq!(
                built.is_client_driven(),
                strategy.is_client_driven(),
                "{strategy}: registry kind mismatch"
            );
            assert_eq!(built.name(), strategy.name(), "{strategy}: name mismatch");
        }
    }
}
