//! The allocation strategies under evaluation.

use std::fmt;

/// One of the five allocation strategies the paper evaluates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Strategy {
    /// Client-driven: Mosaic framework with every client running Pilot.
    Mosaic,
    /// Miner-driven: G-TxAllo recomputed on the full history each epoch.
    GTxAllo,
    /// Miner-driven: A-TxAllo incremental update on the recent window.
    ATxAllo,
    /// Miner-driven: multilevel Metis-like partitioning of the full
    /// history each epoch.
    Metis,
    /// Static hash-based allocation (`SHA256(address) mod k`).
    Random,
}

impl Strategy {
    /// All strategies, in the report order of the paper's tables.
    pub const ALL: [Strategy; 5] = [
        Strategy::Mosaic,
        Strategy::GTxAllo,
        Strategy::ATxAllo,
        Strategy::Metis,
        Strategy::Random,
    ];

    /// The display name used in tables (the paper labels Mosaic's
    /// measurements "Pilot").
    pub fn name(&self) -> &'static str {
        match self {
            Strategy::Mosaic => "Pilot",
            Strategy::GTxAllo => "G-TxAllo",
            Strategy::ATxAllo => "A-TxAllo",
            Strategy::Metis => "Metis",
            Strategy::Random => "Random",
        }
    }

    /// `true` for the client-driven strategy (allocation via migration
    /// requests on the beacon chain rather than miner recomputation).
    pub fn is_client_driven(&self) -> bool {
        matches!(self, Strategy::Mosaic)
    }

    /// `true` for strategies that never react to transaction patterns.
    pub fn is_static(&self) -> bool {
        matches!(self, Strategy::Random)
    }
}

impl fmt::Display for Strategy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_unique() {
        let mut names: Vec<&str> = Strategy::ALL.iter().map(|s| s.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), Strategy::ALL.len());
    }

    #[test]
    fn classification() {
        assert!(Strategy::Mosaic.is_client_driven());
        assert!(!Strategy::GTxAllo.is_client_driven());
        assert!(Strategy::Random.is_static());
        assert!(!Strategy::Mosaic.is_static());
        assert_eq!(Strategy::Mosaic.to_string(), "Pilot");
    }
}
