//! Declarative experiment scenarios: one serializable spec per study.
//!
//! A [`Scenario`] is the *data* form of an experiment: it names a trace
//! source (synthetic [`WorkloadConfig`] or CSV file), a base parameter
//! point, a one-at-a-time parameter grid ([`GridAxis`] over `k`, `η`,
//! `τ`, `β`, `λ`, migration capacity), the strategy set, parallelism at
//! both levels, and an observer stack. A
//! [`Simulation`](crate::session::Simulation) session materialises the
//! trace once and runs every cell of the grid.
//!
//! Scenarios round-trip through a line-oriented `key = value` text
//! format (see [`Scenario::to_text`] / [`Scenario::parse`]), so studies
//! can be checked in as `.scenario` files and driven from the command
//! line:
//!
//! ```text
//! # mosaic scenario v1
//! name = effectiveness-quick
//! trace = generated
//! workload.blocks = 2000
//! ...
//! params.shards = 16
//! params.eta = 2
//! axis.k = 4, 16, 32
//! axis.eta = 5, 10
//! strategies = Pilot, G-TxAllo, A-TxAllo, Metis, Random
//! ```
//!
//! The presets that used to hide behind `MOSAIC_SCALE` env parsing are
//! plain constructors here ([`Scenario::effectiveness`],
//! [`Scenario::full_protocol`], [`Scenario::beta_sweep`]) and live as
//! checked-in files under `scenarios/` at the repository root.

use std::fmt::Write as _;
use std::path::{Path, PathBuf};

use mosaic_types::{Error, LambdaPolicy, Result, SystemParams};
use mosaic_workload::{TraceSource, WorkloadConfig};

use crate::parallel::Parallelism;
use crate::runner::ExperimentConfig;
use crate::scale::Scale;
use crate::strategy::Strategy;

/// The beacon-chain migration-commit bound of one cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Capacity {
    /// The paper's `λ` bound (the default).
    Lambda,
    /// No bound at all (the capacity ablation's comparison point).
    Unbounded,
    /// A fixed number of commits per epoch.
    Fixed(usize),
}

impl Capacity {
    /// Converts to the [`ExperimentConfig::migration_capacity`] field.
    pub fn to_config(self) -> Option<usize> {
        match self {
            Capacity::Lambda => None,
            Capacity::Unbounded => Some(usize::MAX),
            Capacity::Fixed(n) => Some(n),
        }
    }

    fn to_token(self) -> String {
        match self {
            Capacity::Lambda => "lambda".to_string(),
            Capacity::Unbounded => "unbounded".to_string(),
            Capacity::Fixed(n) => n.to_string(),
        }
    }

    fn parse_token(token: &str, line: usize) -> Result<Self> {
        match token {
            "lambda" => Ok(Capacity::Lambda),
            "unbounded" => Ok(Capacity::Unbounded),
            n => Ok(Capacity::Fixed(parse_num(n, "migration capacity", line)?)),
        }
    }

    fn label(self) -> String {
        match self {
            Capacity::Lambda => "capacity = λ".to_string(),
            Capacity::Unbounded => "capacity = ∞".to_string(),
            Capacity::Fixed(n) => format!("capacity = {n}"),
        }
    }
}

/// One swept parameter: the grid varies it across its values while every
/// other parameter stays at the scenario's base point (the paper's
/// one-at-a-time protocol — Tables I–IV vary `k` at `η = 2`, then `η` at
/// `k = 16`).
#[derive(Debug, Clone, PartialEq)]
pub enum GridAxis {
    /// Shard counts `k` (row labels `"k = 4"`, …).
    Shards(Vec<u16>),
    /// Cross-shard difficulties `η` (`"η = 5"`, …).
    Eta(Vec<f64>),
    /// Epoch lengths `τ` in blocks (`"τ = 100"`, …).
    Tau(Vec<u32>),
    /// Future-knowledge ratios `β` (`"β = 0.5"`, …).
    Beta(Vec<f64>),
    /// Fixed per-shard capacities `λ` (`"λ = 250"`, …); the base point
    /// uses the paper's `|T_epoch|/k` policy.
    Lambda(Vec<f64>),
    /// Beacon migration-commit bounds (`"capacity = ∞"`, …).
    MigrationCapacity(Vec<Capacity>),
}

impl GridAxis {
    fn key(&self) -> &'static str {
        match self {
            GridAxis::Shards(_) => "k",
            GridAxis::Eta(_) => "eta",
            GridAxis::Tau(_) => "tau",
            GridAxis::Beta(_) => "beta",
            GridAxis::Lambda(_) => "lambda",
            GridAxis::MigrationCapacity(_) => "capacity",
        }
    }

    fn values_text(&self) -> String {
        fn join<T: ToString>(values: &[T]) -> String {
            values
                .iter()
                .map(T::to_string)
                .collect::<Vec<_>>()
                .join(", ")
        }
        match self {
            GridAxis::Shards(v) => join(v),
            GridAxis::Eta(v) | GridAxis::Beta(v) | GridAxis::Lambda(v) => join(v),
            GridAxis::Tau(v) => join(v),
            GridAxis::MigrationCapacity(v) => v
                .iter()
                .map(|c| c.to_token())
                .collect::<Vec<_>>()
                .join(", "),
        }
    }

    fn parse(key: &str, value: &str, line: usize) -> Result<Self> {
        let tokens: Vec<&str> = value
            .split(',')
            .map(str::trim)
            .filter(|t| !t.is_empty())
            .collect();
        if tokens.is_empty() {
            return Err(parse_error(line, format!("axis.{key} has no values")));
        }
        let floats = |what: &str| -> Result<Vec<f64>> {
            tokens.iter().map(|t| parse_num(t, what, line)).collect()
        };
        match key {
            "k" => Ok(GridAxis::Shards(
                tokens
                    .iter()
                    .map(|t| parse_num(t, "shard count", line))
                    .collect::<Result<_>>()?,
            )),
            "eta" => Ok(GridAxis::Eta(floats("eta")?)),
            "tau" => Ok(GridAxis::Tau(
                tokens
                    .iter()
                    .map(|t| parse_num(t, "tau", line))
                    .collect::<Result<_>>()?,
            )),
            "beta" => Ok(GridAxis::Beta(floats("beta")?)),
            "lambda" => Ok(GridAxis::Lambda(floats("lambda")?)),
            "capacity" => Ok(GridAxis::MigrationCapacity(
                tokens
                    .iter()
                    .map(|t| Capacity::parse_token(t, line))
                    .collect::<Result<_>>()?,
            )),
            other => Err(parse_error(
                line,
                format!("unknown grid axis {other:?}; valid: k, eta, tau, beta, lambda, capacity"),
            )),
        }
    }

    /// Expands this axis around `base`: one labelled parameter point per
    /// value, every other parameter untouched.
    fn points(&self, base: SystemParams, base_capacity: Capacity) -> Result<Vec<CellPoint>> {
        let mut points = Vec::new();
        match self {
            GridAxis::Shards(values) => {
                for &k in values {
                    points.push(CellPoint {
                        label: format!("k = {k}"),
                        params: base.with_shards(k)?,
                        capacity: base_capacity,
                    });
                }
            }
            GridAxis::Eta(values) => {
                for &eta in values {
                    points.push(CellPoint {
                        label: format!("η = {eta}"),
                        params: base.with_eta(eta)?,
                        capacity: base_capacity,
                    });
                }
            }
            GridAxis::Tau(values) => {
                for &tau in values {
                    points.push(CellPoint {
                        label: format!("τ = {tau}"),
                        params: base.with_tau(tau)?,
                        capacity: base_capacity,
                    });
                }
            }
            GridAxis::Beta(values) => {
                for &beta in values {
                    points.push(CellPoint {
                        label: format!("β = {beta}"),
                        params: base.with_beta(beta)?,
                        capacity: base_capacity,
                    });
                }
            }
            GridAxis::Lambda(values) => {
                for &lambda in values {
                    points.push(CellPoint {
                        label: format!("λ = {lambda}"),
                        params: base.with_lambda_policy(LambdaPolicy::Fixed(lambda))?,
                        capacity: base_capacity,
                    });
                }
            }
            GridAxis::MigrationCapacity(values) => {
                for &capacity in values {
                    points.push(CellPoint {
                        label: capacity.label(),
                        params: base,
                        capacity,
                    });
                }
            }
        }
        Ok(points)
    }
}

/// What to do with the per-epoch metric rows of every cell.
#[derive(Debug, Clone, PartialEq)]
pub enum ObserverSpec {
    /// Keep the rows in memory
    /// ([`ExperimentResult::per_epoch`](crate::ExperimentResult::per_epoch)).
    Collect,
    /// Stream each cell's rows to `<dir>/<cell>.csv` the moment they are
    /// computed (bounded memory — byte-identical to
    /// [`crate::runner::run_streaming`]).
    StreamCsv(PathBuf),
    /// Install a process-wide telemetry recorder whose JSONL event
    /// stream (phase spans, per-epoch events, the final metric
    /// snapshot) is appended to `<path>`. Telemetry never perturbs the
    /// result CSVs — they stay byte-identical to a run without this
    /// observer.
    Telemetry(PathBuf),
}

/// The observer forms a scenario's `observers = ...` line accepts,
/// enumerated in every parse error.
const OBSERVER_FORMS: &str = "collect, stream-csv:<dir>, telemetry=jsonl:<path>";

impl ObserverSpec {
    fn to_token(&self) -> String {
        match self {
            ObserverSpec::Collect => "collect".to_string(),
            ObserverSpec::StreamCsv(dir) => format!("stream-csv:{}", dir.display()),
            ObserverSpec::Telemetry(path) => format!("telemetry=jsonl:{}", path.display()),
        }
    }

    fn parse_token(token: &str, line: usize) -> Result<Self> {
        if token == "collect" {
            return Ok(ObserverSpec::Collect);
        }
        if let Some(dir) = token.strip_prefix("stream-csv:") {
            if dir.is_empty() {
                return Err(parse_error(
                    line,
                    format!(
                        "stream-csv observer needs a directory; valid observers: {OBSERVER_FORMS}"
                    ),
                ));
            }
            return Ok(ObserverSpec::StreamCsv(PathBuf::from(dir)));
        }
        if let Some(rest) = token.strip_prefix("telemetry") {
            let Some(spec) = rest.trim_start().strip_prefix('=') else {
                return Err(parse_error(
                    line,
                    format!(
                        "telemetry observer must be written telemetry=jsonl:<path>; \
                         valid observers: {OBSERVER_FORMS}"
                    ),
                ));
            };
            let Some(path) = spec.trim_start().strip_prefix("jsonl:") else {
                return Err(parse_error(
                    line,
                    format!(
                        "telemetry observer only supports the jsonl:<path> sink; \
                         valid observers: {OBSERVER_FORMS}"
                    ),
                ));
            };
            if path.is_empty() {
                return Err(parse_error(
                    line,
                    format!("telemetry=jsonl observer needs a file path; valid observers: {OBSERVER_FORMS}"),
                ));
            }
            return Ok(ObserverSpec::Telemetry(PathBuf::from(path)));
        }
        Err(parse_error(
            line,
            format!("unknown observer {token:?}; valid observers: {OBSERVER_FORMS}"),
        ))
    }
}

/// One labelled parameter point of an expanded grid.
#[derive(Debug, Clone, PartialEq)]
pub struct CellPoint {
    /// The row label of the paper's tables (`"k = 4"`, `"η = 5"`, …).
    pub label: String,
    /// The full parameter set of this point.
    pub params: SystemParams,
    /// The migration-commit bound of this point.
    pub capacity: Capacity,
}

/// One experiment cell of an expanded scenario: a labelled parameter
/// point × one strategy, ready to run.
#[derive(Debug, Clone, PartialEq)]
pub struct CellSpec {
    /// The parameter-point label (shared by every strategy at the point).
    pub label: String,
    /// The fully-resolved experiment configuration.
    pub config: ExperimentConfig,
}

impl CellSpec {
    /// A stable file-system-safe name for this cell:
    /// `<label-slug>-<strategy>` (`"k-4-pilot"`), or just the lowercased
    /// strategy name when `single_point` (so a one-point scenario writes
    /// the classic `pilot.csv`, `g-txallo.csv`, …).
    pub fn file_stem(&self, single_point: bool) -> String {
        let strategy = self.config.strategy.name().to_lowercase();
        if single_point {
            return strategy;
        }
        format!("{}-{strategy}", slug(&self.label))
    }
}

/// Lowercases and maps the label's Greek parameter symbols to ASCII,
/// collapsing everything else to single dashes: `"k = 4"` → `"k-4"`,
/// `"η = 5"` → `"eta-5"`, `"capacity = ∞"` → `"capacity-unbounded"`.
fn slug(label: &str) -> String {
    let mut out = String::new();
    for c in label.chars() {
        match c {
            'η' => out.push_str("eta"),
            'τ' => out.push_str("tau"),
            'β' => out.push_str("beta"),
            'λ' => out.push_str("lambda"),
            '∞' => out.push_str("unbounded"),
            c if c.is_ascii_alphanumeric() => out.push(c.to_ascii_lowercase()),
            '.' => out.push('.'),
            _ => {
                if !out.ends_with('-') && !out.is_empty() {
                    out.push('-');
                }
            }
        }
    }
    out.trim_end_matches('-').to_string()
}

/// What kind of driver a scenario is destined for.
///
/// The default, [`RunTarget::Offline`], is the batch simulator
/// ([`Simulation`](crate::session::Simulation)). [`RunTarget::Node`]
/// marks the spec as driving a live `mosaic-node` service (serve or
/// replay): per-epoch rows then live on the node, so observers that
/// accumulate results in the driving process (`collect`) are rejected
/// by [`Scenario::validate`]. Serialised as `target = node` — omitted
/// entirely for the offline default, keeping existing `.scenario`
/// files byte-stable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RunTarget {
    /// Batch simulator runs (the default).
    #[default]
    Offline,
    /// A live `mosaic-node` service (serve / replay).
    Node,
}

impl RunTarget {
    /// Checks the target-specific spec invariants — the single home for
    /// every "this spec cannot drive that kind of driver" rule, called
    /// by [`Scenario::validate`]. [`RunTarget::Offline`] accepts any
    /// otherwise-valid spec; [`RunTarget::Node`] rejects observers that
    /// would accumulate rows in the driving process, because a node
    /// run's per-epoch rows live on the service.
    ///
    /// # Errors
    ///
    /// Returns [`Error::ParseScenario`] (line 0) naming the violated
    /// target rule.
    pub fn validate(self, scenario: &Scenario) -> Result<()> {
        match self {
            RunTarget::Offline => Ok(()),
            RunTarget::Node => {
                if scenario.observers.contains(&ObserverSpec::Collect) {
                    return Err(parse_error(
                        0,
                        "a node/replay target cannot be combined with the 'collect' observer \
                         (per-epoch rows live on the mosaic-node service, not in the driving \
                         process); use stream-csv:<dir> instead",
                    ));
                }
                Ok(())
            }
        }
    }
}

/// A complete, serializable experiment specification.
///
/// Construct with [`Scenario::new`] + `with_*` helpers, a preset
/// ([`Scenario::effectiveness`], [`Scenario::full_protocol`],
/// [`Scenario::beta_sweep`]), or [`Scenario::parse`] /
/// [`Scenario::load`] from the text format. Run it with
/// [`Simulation::from_scenario`](crate::session::Simulation::from_scenario).
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    /// Human-readable study name (reports, file stems).
    pub name: String,
    /// Where the transactions come from.
    pub trace: TraceSource,
    /// The base parameter point every grid axis varies around.
    pub base: SystemParams,
    /// The migration-commit bound at the base point.
    pub capacity: Capacity,
    /// Fraction of trace *blocks* used for initial allocation (paper: 0.9).
    pub train_fraction: f64,
    /// Maximum evaluation epochs per cell (paper: 200).
    pub eval_epochs: usize,
    /// Explicit miner population; `None` derives `4k` per cell at run
    /// time.
    pub miner_count: Option<usize>,
    /// The one-at-a-time parameter grid; empty = run the base point only.
    pub grid: Vec<GridAxis>,
    /// The strategies to run at every parameter point, in report order.
    pub strategies: Vec<Strategy>,
    /// Worker-pool sizing across grid cells.
    pub grid_parallelism: Parallelism,
    /// Worker-pool sizing within each cell (classification chunks,
    /// per-shard commits, allocator scans).
    pub cell_parallelism: Parallelism,
    /// The observer stack applied to every cell.
    pub observers: Vec<ObserverSpec>,
    /// The driver this spec is destined for (offline simulator vs live
    /// `mosaic-node` service).
    pub target: RunTarget,
}

impl Scenario {
    /// Starts a scenario from a trace source with the paper's defaults:
    /// base `k = 16`, `η = 2`, `τ = 300`, `β = 0`, λ-bounded capacity,
    /// 90/10 split, every strategy, collect-only observers, parallel
    /// grid, sequential cells.
    pub fn new(name: impl Into<String>, trace: TraceSource, eval_epochs: usize) -> Self {
        Scenario {
            name: name.into(),
            trace,
            base: SystemParams::default(),
            capacity: Capacity::Lambda,
            train_fraction: 0.9,
            eval_epochs,
            miner_count: None,
            grid: Vec::new(),
            strategies: Strategy::ALL.to_vec(),
            grid_parallelism: Parallelism::Auto,
            cell_parallelism: Parallelism::Sequential,
            observers: vec![ObserverSpec::Collect],
            target: RunTarget::Offline,
        }
    }

    /// Sets the base parameter point.
    pub fn with_base(mut self, base: SystemParams) -> Self {
        self.base = base;
        self
    }

    /// Appends a grid axis.
    pub fn with_axis(mut self, axis: GridAxis) -> Self {
        self.grid.push(axis);
        self
    }

    /// Replaces the strategy set.
    pub fn with_strategies(mut self, strategies: impl Into<Vec<Strategy>>) -> Self {
        self.strategies = strategies.into();
        self
    }

    /// Sets cross-cell worker-pool sizing.
    pub fn with_grid_parallelism(mut self, parallelism: Parallelism) -> Self {
        self.grid_parallelism = parallelism;
        self
    }

    /// Sets within-cell worker-pool sizing.
    pub fn with_cell_parallelism(mut self, parallelism: Parallelism) -> Self {
        self.cell_parallelism = parallelism;
        self
    }

    /// Replaces the observer stack.
    pub fn with_observers(mut self, observers: impl Into<Vec<ObserverSpec>>) -> Self {
        self.observers = observers.into();
        self
    }

    /// Sets the run target (offline simulator vs `mosaic-node` service).
    pub fn with_target(mut self, target: RunTarget) -> Self {
        self.target = target;
        self
    }

    /// Sets the base migration-commit bound.
    pub fn with_capacity(mut self, capacity: Capacity) -> Self {
        self.capacity = capacity;
        self
    }

    /// Sets an explicit miner population (default: `4k` per cell).
    pub fn with_miner_count(mut self, miners: usize) -> Self {
        self.miner_count = Some(miners);
        self
    }

    /// The paper's effectiveness grid (§V-A, Tables I–IV): `k ∈ {4, 16,
    /// 32}` at `η = 2`, then `η ∈ {5, 10}` at `k = 16`, every strategy,
    /// on the scale's workload.
    pub fn effectiveness(scale: &Scale) -> Self {
        Scenario::new(
            format!("effectiveness-{}", scale.label),
            TraceSource::Generated(scale.workload.clone()),
            scale.eval_epochs,
        )
        .with_base(paper_base(scale))
        .with_axis(GridAxis::Shards(vec![4, 16, 32]))
        .with_axis(GridAxis::Eta(vec![5.0, 10.0]))
    }

    /// The streamed full-protocol run behind the `full_run` binary: the
    /// default parameter point (`k = 16`, `η = 2`), every strategy,
    /// within-cell parallelism on, per-epoch rows streamed to
    /// `results/`.
    pub fn full_protocol(scale: &Scale) -> Self {
        Scenario::new(
            scale.label,
            TraceSource::Generated(scale.workload.clone()),
            scale.eval_epochs,
        )
        .with_base(paper_base(scale))
        .with_grid_parallelism(Parallelism::Sequential)
        .with_cell_parallelism(Parallelism::Auto)
        .with_observers([ObserverSpec::StreamCsv(PathBuf::from("results"))])
    }

    /// The Table V future-knowledge sweep: Mosaic at `k = 4`, `η = 2`
    /// with `β ∈ {0, 0.25, 0.5, 0.75, 1}`.
    pub fn beta_sweep(scale: &Scale) -> Self {
        Scenario::new(
            format!("beta-sweep-{}", scale.label),
            TraceSource::Generated(scale.workload.clone()),
            scale.eval_epochs,
        )
        .with_base(paper_base(scale).with_shards(4).expect("valid k"))
        .with_axis(GridAxis::Beta(vec![0.0, 0.25, 0.5, 0.75, 1.0]))
        .with_strategies([Strategy::Mosaic])
    }

    /// The ROADMAP's 10M-account scale proof: a streamed synthetic
    /// workload (40M transactions — never materialised) driven through
    /// the full epoch protocol at the paper's parameter point, with
    /// per-epoch rows streamed to `results/`. The hash-based Random
    /// strategy frees the accreted graph right after the initial
    /// allocation ([`crate::engine::EpochStrategy::consumes_history`]),
    /// so steady-state memory is the current + recent window plus
    /// O(accounts) generator and ledger state. `bench_scale` runs this
    /// scenario proportionally scaled down to chart the epochs/sec +
    /// peak-RSS curve vs account count.
    pub fn huge() -> Self {
        let mut workload = WorkloadConfig::paper_scaled(0xB16);
        workload.initial_accounts = 10_000_000;
        workload.blocks = 50_000;
        workload.txs_per_block = 800;
        Scenario::new("huge", TraceSource::StreamedGenerated(workload), 5)
            .with_base(
                SystemParams::builder()
                    .shards(16)
                    .eta(2.0)
                    .tau(500)
                    .build()
                    .expect("valid params"),
            )
            .with_strategies([Strategy::Random])
            .with_grid_parallelism(Parallelism::Sequential)
            .with_cell_parallelism(Parallelism::Auto)
            .with_observers([ObserverSpec::StreamCsv(PathBuf::from("results"))])
    }

    /// The workload config behind a generated trace source, if any.
    pub fn workload(&self) -> Option<&WorkloadConfig> {
        self.trace.workload()
    }

    /// `true` if the grid collapses to a single parameter point.
    pub fn is_single_point(&self) -> bool {
        self.grid.iter().all(|axis| match axis {
            GridAxis::Shards(v) => v.is_empty(),
            GridAxis::Eta(v) | GridAxis::Beta(v) | GridAxis::Lambda(v) => v.is_empty(),
            GridAxis::Tau(v) => v.is_empty(),
            GridAxis::MigrationCapacity(v) => v.is_empty(),
        })
    }

    /// Expands the grid into labelled parameter points, in axis order.
    /// An empty grid yields the base point labelled by its shard count.
    ///
    /// # Errors
    ///
    /// Returns the parameter-validation error of the first invalid axis
    /// value ([`Error::InvalidShardCount`], [`Error::InvalidEta`], …).
    pub fn points(&self) -> Result<Vec<CellPoint>> {
        if self.is_single_point() {
            return Ok(vec![CellPoint {
                label: format!("k = {}", self.base.shards()),
                params: self.base,
                capacity: self.capacity,
            }]);
        }
        let mut points = Vec::new();
        for axis in &self.grid {
            points.extend(axis.points(self.base, self.capacity)?);
        }
        Ok(points)
    }

    /// Expands the scenario into runnable cells: every parameter point ×
    /// every strategy, in the paper's report order (points outermost).
    ///
    /// # Errors
    ///
    /// Returns [`Error::ParseScenario`] on an empty strategy set or
    /// invalid protocol fields, and parameter-validation errors from
    /// [`Scenario::points`].
    pub fn cells(&self) -> Result<Vec<CellSpec>> {
        self.validate()?;
        let mut cells = Vec::new();
        for point in self.points()? {
            for &strategy in &self.strategies {
                cells.push(CellSpec {
                    label: point.label.clone(),
                    config: ExperimentConfig {
                        params: point.params,
                        strategy,
                        train_fraction: self.train_fraction,
                        eval_epochs: self.eval_epochs,
                        miner_count: self.miner_count,
                        migration_capacity: point.capacity.to_config(),
                        cell_parallelism: self.cell_parallelism,
                    },
                });
            }
        }
        Ok(cells)
    }

    /// [`Scenario::cells`] under an explicit [`RunTarget`]: validates
    /// and expands the spec as `target` would see it, without the
    /// caller cloning and re-tagging the scenario by hand. A
    /// `mosaic-node` service expands with
    /// `scenario.cells_for(RunTarget::Node)` whatever target the file
    /// declared, so node-incompatible specs (e.g. a `collect` observer)
    /// are rejected up front.
    ///
    /// # Errors
    ///
    /// As [`Scenario::cells`], plus the target rules of
    /// [`RunTarget::validate`] for `target`.
    pub fn cells_for(&self, target: RunTarget) -> Result<Vec<CellSpec>> {
        if self.target == target {
            self.cells()
        } else {
            self.clone().with_target(target).cells()
        }
    }

    /// Checks scenario-level invariants (strategy set, protocol fields,
    /// axis values). Workload fields are validated by the generator at
    /// materialisation time ([`WorkloadConfig::validate`]).
    ///
    /// # Errors
    ///
    /// Returns [`Error::ParseScenario`] (line 0) describing the first
    /// violated invariant.
    pub fn validate(&self) -> Result<()> {
        if self.name.is_empty() {
            return Err(parse_error(0, "scenario needs a name"));
        }
        if self.strategies.is_empty() {
            return Err(parse_error(0, "scenario needs at least one strategy"));
        }
        if !(self.train_fraction > 0.0 && self.train_fraction < 1.0) {
            return Err(parse_error(
                0,
                format!(
                    "train_fraction must be in (0, 1), got {}",
                    self.train_fraction
                ),
            ));
        }
        if self.eval_epochs == 0 {
            return Err(parse_error(0, "eval_epochs must be at least 1"));
        }
        if self.observers.is_empty() {
            return Err(parse_error(0, "scenario needs at least one observer"));
        }
        // The whole point of a streamed source is that nothing scales
        // with run length; collecting every per-epoch row in memory (and
        // forcing a materialised engine pass) would silently undo that.
        if self.trace.is_streamed() && self.observers.contains(&ObserverSpec::Collect) {
            return Err(parse_error(
                0,
                "a streamed trace source cannot be combined with the 'collect' observer \
                 (results would accumulate in memory against an unbounded run); \
                 use stream-csv:<dir> instead",
            ));
        }
        // Target-specific rules (e.g. node runs keep their rows on the
        // service) live with the RunTarget type, one arm per target.
        self.target.validate(self)?;
        if let Some(dup) = self
            .observers
            .iter()
            .enumerate()
            .find_map(|(i, o)| self.observers[..i].contains(o).then_some(o))
        {
            // Two identical stream-csv observers would open every cell's
            // CSV file twice; a duplicate collect is a plain spec error.
            return Err(parse_error(
                0,
                format!("duplicate observer {:?}", dup.to_token()),
            ));
        }
        if let Some(dup) = self
            .strategies
            .iter()
            .enumerate()
            .find_map(|(i, s)| self.strategies[..i].contains(s).then_some(s))
        {
            return Err(parse_error(0, format!("duplicate strategy {}", dup.name())));
        }
        // Surface invalid axis values now rather than at run time — and
        // reject duplicate parameter points: cells are deterministic, so
        // a repeated point adds cost without information, and under a
        // stream-csv observer two identical cells would race on one CSV
        // path ([`CellSpec::file_stem`] is derived from label+strategy).
        let points = self.points()?;
        for (i, p) in points.iter().enumerate() {
            if points[..i].iter().any(|q| q.label == p.label) {
                return Err(parse_error(
                    0,
                    format!("duplicate grid point {:?}", p.label),
                ));
            }
        }
        Ok(())
    }

    /// Serialises to the canonical text format. Guaranteed to
    /// [`Scenario::parse`] back to an equal scenario.
    pub fn to_text(&self) -> String {
        let mut out = String::from("# mosaic scenario v1\n");
        let mut kv = |k: &str, v: String| {
            let _ = writeln!(out, "{k} = {v}");
        };
        kv("name", self.name.clone());
        fn workload_kv(kv: &mut impl FnMut(&str, String), w: &WorkloadConfig) {
            kv("workload.initial_accounts", w.initial_accounts.to_string());
            kv("workload.blocks", w.blocks.to_string());
            kv("workload.txs_per_block", w.txs_per_block.to_string());
            kv(
                "workload.activity_exponent",
                w.activity_exponent.to_string(),
            );
            kv("workload.communities", w.communities.to_string());
            kv(
                "workload.intra_community_bias",
                w.intra_community_bias.to_string(),
            );
            kv("workload.hub_fraction", w.hub_fraction.to_string());
            kv(
                "workload.hub_traffic_share",
                w.hub_traffic_share.to_string(),
            );
            kv(
                "workload.new_accounts_per_block",
                w.new_accounts_per_block.to_string(),
            );
            kv("workload.drift_per_block", w.drift_per_block.to_string());
            kv("workload.seed", w.seed.to_string());
        }
        match &self.trace {
            TraceSource::Generated(w) => {
                kv("trace", "generated".to_string());
                workload_kv(&mut kv, w);
            }
            TraceSource::StreamedGenerated(w) => {
                kv("trace", "streamed".to_string());
                workload_kv(&mut kv, w);
            }
            TraceSource::Csv(path) => kv("trace", format!("csv:{}", path.display())),
            TraceSource::StreamedCsv(path) => {
                kv("trace", format!("streamed-csv:{}", path.display()))
            }
        }
        kv("params.shards", self.base.shards().to_string());
        kv("params.eta", self.base.eta().to_string());
        kv("params.tau", self.base.tau().to_string());
        kv("params.beta", self.base.beta().to_string());
        kv(
            "params.lambda",
            match self.base.lambda_policy() {
                LambdaPolicy::EpochAverage => "epoch-average".to_string(),
                LambdaPolicy::Fixed(l) => l.to_string(),
            },
        );
        kv("train_fraction", self.train_fraction.to_string());
        kv("eval_epochs", self.eval_epochs.to_string());
        kv(
            "miner_count",
            self.miner_count
                .map_or_else(|| "auto".to_string(), |m| m.to_string()),
        );
        kv("migration_capacity", self.capacity.to_token());
        kv(
            "strategies",
            self.strategies
                .iter()
                .map(|s| s.name().to_string())
                .collect::<Vec<_>>()
                .join(", "),
        );
        for axis in &self.grid {
            kv(&format!("axis.{}", axis.key()), axis.values_text());
        }
        kv(
            "grid_parallelism",
            parallelism_to_token(self.grid_parallelism),
        );
        kv(
            "cell_parallelism",
            parallelism_to_token(self.cell_parallelism),
        );
        kv(
            "observers",
            self.observers
                .iter()
                .map(ObserverSpec::to_token)
                .collect::<Vec<_>>()
                .join(", "),
        );
        // Emitted only for the non-default node target so every existing
        // offline `.scenario` file stays byte-stable.
        if self.target == RunTarget::Node {
            kv("target", "node".to_string());
        }
        out
    }

    /// Parses the text format: `key = value` lines, `#` comments and
    /// blank lines ignored, later keys overriding earlier ones (except
    /// `axis.*`, which append in order). Unspecified optional keys take
    /// the [`Scenario::new`] defaults; `name`, `trace` and `eval_epochs`
    /// are required.
    ///
    /// # Errors
    ///
    /// Returns [`Error::ParseScenario`] with a 1-based line number on
    /// malformed input, and scenario-level validation errors
    /// ([`Scenario::validate`]) on a well-formed but inconsistent spec.
    pub fn parse(text: &str) -> Result<Self> {
        let mut name: Option<String> = None;
        let mut trace_kind: Option<(String, usize)> = None;
        let mut workload = WorkloadConfig::paper_scaled(0);
        let mut shards: u16 = SystemParams::default().shards();
        let mut eta: f64 = SystemParams::default().eta();
        let mut tau: u32 = SystemParams::default().tau();
        let mut beta: f64 = 0.0;
        let mut lambda = LambdaPolicy::EpochAverage;
        let mut train_fraction = 0.9f64;
        let mut eval_epochs: Option<usize> = None;
        let mut miner_count: Option<usize> = None;
        let mut capacity = Capacity::Lambda;
        let mut grid: Vec<GridAxis> = Vec::new();
        let mut strategies: Option<Vec<Strategy>> = None;
        let mut grid_parallelism = Parallelism::Auto;
        let mut cell_parallelism = Parallelism::Sequential;
        let mut observers: Option<Vec<ObserverSpec>> = None;
        let mut target = RunTarget::Offline;

        for (idx, raw) in text.lines().enumerate() {
            let line = idx + 1;
            let trimmed = raw.trim();
            if trimmed.is_empty() || trimmed.starts_with('#') {
                continue;
            }
            let Some((key, value)) = trimmed.split_once('=') else {
                return Err(parse_error(
                    line,
                    format!("expected 'key = value', got {trimmed:?}"),
                ));
            };
            let (key, value) = (key.trim(), value.trim());
            match key {
                "name" => name = Some(value.to_string()),
                "trace" => trace_kind = Some((value.to_string(), line)),
                "workload.initial_accounts" => {
                    workload.initial_accounts = parse_num(value, key, line)?
                }
                "workload.blocks" => workload.blocks = parse_num(value, key, line)?,
                "workload.txs_per_block" => workload.txs_per_block = parse_num(value, key, line)?,
                "workload.activity_exponent" => {
                    workload.activity_exponent = parse_num(value, key, line)?
                }
                "workload.communities" => workload.communities = parse_num(value, key, line)?,
                "workload.intra_community_bias" => {
                    workload.intra_community_bias = parse_num(value, key, line)?
                }
                "workload.hub_fraction" => workload.hub_fraction = parse_num(value, key, line)?,
                "workload.hub_traffic_share" => {
                    workload.hub_traffic_share = parse_num(value, key, line)?
                }
                "workload.new_accounts_per_block" => {
                    workload.new_accounts_per_block = parse_num(value, key, line)?
                }
                "workload.drift_per_block" => {
                    workload.drift_per_block = parse_num(value, key, line)?
                }
                "workload.seed" => workload.seed = parse_num(value, key, line)?,
                "params.shards" => shards = parse_num(value, key, line)?,
                "params.eta" => eta = parse_num(value, key, line)?,
                "params.tau" => tau = parse_num(value, key, line)?,
                "params.beta" => beta = parse_num(value, key, line)?,
                "params.lambda" => {
                    lambda = if value == "epoch-average" {
                        LambdaPolicy::EpochAverage
                    } else {
                        LambdaPolicy::Fixed(parse_num(value, key, line)?)
                    }
                }
                "train_fraction" => train_fraction = parse_num(value, key, line)?,
                "eval_epochs" => eval_epochs = Some(parse_num(value, key, line)?),
                "miner_count" => {
                    miner_count = if value == "auto" {
                        None
                    } else {
                        Some(parse_num(value, key, line)?)
                    }
                }
                "migration_capacity" => capacity = Capacity::parse_token(value, line)?,
                "strategies" => {
                    let parsed: Result<Vec<Strategy>> = value
                        .split(',')
                        .map(str::trim)
                        .filter(|t| !t.is_empty())
                        .map(|t| {
                            t.parse::<Strategy>().map_err(|e| match e {
                                Error::ParseScenario { message, .. } => parse_error(line, message),
                                other => other,
                            })
                        })
                        .collect();
                    strategies = Some(parsed?);
                }
                "grid_parallelism" => grid_parallelism = parse_parallelism(value, line)?,
                "cell_parallelism" => cell_parallelism = parse_parallelism(value, line)?,
                "observers" => {
                    let parsed: Result<Vec<ObserverSpec>> = value
                        .split(',')
                        .map(str::trim)
                        .filter(|t| !t.is_empty())
                        .map(|t| ObserverSpec::parse_token(t, line))
                        .collect();
                    observers = Some(parsed?);
                }
                "target" => {
                    target = match value {
                        "offline" => RunTarget::Offline,
                        "node" => RunTarget::Node,
                        other => {
                            return Err(parse_error(
                                line,
                                format!("unknown target {other:?}; valid: offline, node"),
                            ))
                        }
                    }
                }
                axis if axis.starts_with("axis.") => {
                    grid.push(GridAxis::parse(&axis["axis.".len()..], value, line)?);
                }
                other => {
                    return Err(parse_error(line, format!("unknown key {other:?}")));
                }
            }
        }

        let name = name.ok_or_else(|| parse_error(0, "missing required key 'name'"))?;
        let (trace_kind, trace_line) =
            trace_kind.ok_or_else(|| parse_error(0, "missing required key 'trace'"))?;
        let trace = if trace_kind == "generated" {
            TraceSource::Generated(workload)
        } else if trace_kind == "streamed" {
            TraceSource::StreamedGenerated(workload)
        } else if let Some(path) = trace_kind.strip_prefix("streamed-csv:") {
            if path.is_empty() {
                return Err(parse_error(trace_line, "streamed-csv trace needs a path"));
            }
            TraceSource::streamed_csv(path)
        } else if let Some(path) = trace_kind.strip_prefix("csv:") {
            if path.is_empty() {
                return Err(parse_error(trace_line, "csv trace needs a path"));
            }
            TraceSource::csv(path)
        } else {
            return Err(parse_error(
                trace_line,
                format!(
                    "unknown trace source {trace_kind:?}; valid: generated, streamed, \
                     csv:<path>, streamed-csv:<path>"
                ),
            ));
        };
        let eval_epochs =
            eval_epochs.ok_or_else(|| parse_error(0, "missing required key 'eval_epochs'"))?;

        let base = SystemParams::builder()
            .shards(shards)
            .eta(eta)
            .tau(tau)
            .beta(beta)
            .lambda_policy(lambda)
            .build()?;
        let scenario = Scenario {
            name,
            trace,
            base,
            capacity,
            train_fraction,
            eval_epochs,
            miner_count,
            grid,
            strategies: strategies.unwrap_or_else(|| Strategy::ALL.to_vec()),
            grid_parallelism,
            cell_parallelism,
            observers: observers.unwrap_or_else(|| vec![ObserverSpec::Collect]),
            target,
        };
        scenario.validate()?;
        Ok(scenario)
    }

    /// Reads and parses a `.scenario` file.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Io`] if the file cannot be read and
    /// [`Scenario::parse`] errors on malformed content.
    pub fn load(path: impl AsRef<Path>) -> Result<Self> {
        let path = path.as_ref();
        let text = std::fs::read_to_string(path).map_err(|e| Error::Io {
            path: path.display().to_string(),
            message: e.to_string(),
        })?;
        Scenario::parse(&text)
    }

    /// Writes the canonical text form to a `.scenario` file.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Io`] on write failure.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<()> {
        let path = path.as_ref();
        std::fs::write(path, self.to_text()).map_err(|e| Error::Io {
            path: path.display().to_string(),
            message: e.to_string(),
        })
    }
}

/// The paper's default parameter point at a scale's epoch length:
/// `k = 16`, `η = 2`, `τ = scale.tau`, `β = 0`.
fn paper_base(scale: &Scale) -> SystemParams {
    SystemParams::builder()
        .shards(16)
        .eta(2.0)
        .tau(scale.tau)
        .build()
        .expect("paper defaults are valid")
}

fn parallelism_to_token(p: Parallelism) -> String {
    match p {
        Parallelism::Sequential => "sequential".to_string(),
        Parallelism::Auto => "auto".to_string(),
        Parallelism::Threads(n) => n.to_string(),
    }
}

fn parse_parallelism(value: &str, line: usize) -> Result<Parallelism> {
    match value {
        "sequential" => Ok(Parallelism::Sequential),
        "auto" => Ok(Parallelism::Auto),
        n => Ok(Parallelism::Threads(parse_num(n, "parallelism", line)?)),
    }
}

fn parse_error(line: usize, message: impl Into<String>) -> Error {
    Error::ParseScenario {
        line,
        message: message.into(),
    }
}

fn parse_num<T: std::str::FromStr>(raw: &str, what: &str, line: usize) -> Result<T> {
    raw.parse::<T>()
        .map_err(|_| parse_error(line, format!("invalid {what} {raw:?}")))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_effectiveness() -> Scenario {
        Scenario::effectiveness(&Scale::quick())
    }

    #[test]
    fn effectiveness_points_match_the_paper_grid() {
        let points = quick_effectiveness().points().unwrap();
        let labels: Vec<&str> = points.iter().map(|p| p.label.as_str()).collect();
        assert_eq!(labels, ["k = 4", "k = 16", "k = 32", "η = 5", "η = 10"]);
        assert_eq!(points[0].params.shards(), 4);
        assert_eq!(points[0].params.eta(), 2.0);
        assert_eq!(points[3].params.shards(), 16);
        assert_eq!(points[3].params.eta(), 5.0);
        for p in &points {
            assert_eq!(p.params.tau(), Scale::quick().tau);
            assert_eq!(p.capacity, Capacity::Lambda);
        }
    }

    #[test]
    fn cells_nest_strategies_inside_points() {
        let cells = quick_effectiveness().cells().unwrap();
        assert_eq!(cells.len(), 5 * Strategy::ALL.len());
        assert_eq!(cells[0].label, "k = 4");
        assert_eq!(cells[0].config.strategy, Strategy::Mosaic);
        assert_eq!(cells[4].config.strategy, Strategy::Random);
        assert_eq!(cells[5].label, "k = 16");
        // Run-time miner derivation: no stale 4k from the base point.
        assert_eq!(cells[0].config.resolved_miner_count(), 16);
        assert_eq!(cells[5].config.resolved_miner_count(), 64);
    }

    #[test]
    fn single_point_scenario_labels_by_base_shards() {
        let scenario = Scenario::full_protocol(&Scale::quick());
        assert!(scenario.is_single_point());
        let points = scenario.points().unwrap();
        assert_eq!(points.len(), 1);
        assert_eq!(points[0].label, "k = 16");
    }

    #[test]
    fn text_roundtrip_is_exact_for_presets() {
        for scenario in [
            quick_effectiveness(),
            Scenario::effectiveness(&Scale::default_scale()),
            Scenario::full_protocol(&Scale::quick()),
            Scenario::full_protocol(&Scale::full()),
            Scenario::beta_sweep(&Scale::quick()),
            Scenario::huge(),
        ] {
            let text = scenario.to_text();
            let back = Scenario::parse(&text).unwrap();
            assert_eq!(back, scenario, "round-trip diverged:\n{text}");
            // Serialisation is canonical: a second trip is byte-stable.
            assert_eq!(back.to_text(), text);
        }
    }

    #[test]
    fn roundtrip_covers_every_axis_and_observer_kind() {
        let scenario = Scenario::new("kitchen-sink", TraceSource::csv("data/eth.csv"), 7)
            .with_base(
                SystemParams::builder()
                    .shards(8)
                    .eta(3.5)
                    .tau(120)
                    .beta(0.25)
                    .lambda_policy(LambdaPolicy::Fixed(450.5))
                    .build()
                    .unwrap(),
            )
            .with_capacity(Capacity::Fixed(12))
            .with_miner_count(99)
            .with_axis(GridAxis::Shards(vec![2, 4]))
            .with_axis(GridAxis::Eta(vec![1.5, 2.25]))
            .with_axis(GridAxis::Tau(vec![60, 600]))
            .with_axis(GridAxis::Beta(vec![0.0, 1.0]))
            .with_axis(GridAxis::Lambda(vec![100.0, 250.75]))
            .with_axis(GridAxis::MigrationCapacity(vec![
                Capacity::Lambda,
                Capacity::Unbounded,
                Capacity::Fixed(500),
            ]))
            .with_strategies([Strategy::Mosaic, Strategy::Random])
            .with_grid_parallelism(Parallelism::Threads(3))
            .with_cell_parallelism(Parallelism::Auto)
            .with_observers([
                ObserverSpec::Collect,
                ObserverSpec::StreamCsv(PathBuf::from("out/csv")),
                ObserverSpec::Telemetry(PathBuf::from("telemetry/run.jsonl")),
            ]);
        let back = Scenario::parse(&scenario.to_text()).unwrap();
        assert_eq!(back, scenario);
    }

    #[test]
    fn observer_parse_errors_enumerate_the_valid_forms() {
        let base = "name = x\ntrace = generated\neval_epochs = 1\n";
        for (value, expect) in [
            ("dump", "unknown observer"),
            ("stream-csv:", "stream-csv observer needs a directory"),
            ("telemetry", "telemetry=jsonl:<path>"),
            ("telemetry = csv:out", "jsonl:<path> sink"),
            ("telemetry=jsonl:", "needs a file path"),
        ] {
            let err = Scenario::parse(&format!("{base}observers = {value}\n")).unwrap_err();
            let msg = err.to_string();
            assert!(msg.contains(expect), "{value}: {msg}");
            // Every observer error teaches the full set of valid forms.
            assert!(msg.contains(OBSERVER_FORMS), "{value}: {msg}");
            assert!(msg.contains("line 4"), "{value}: {msg}");
        }
        // The telemetry token survives spaces around its '=' (the same
        // tolerance the top-level keys get).
        let ok =
            Scenario::parse(&format!("{base}observers = telemetry = jsonl:t.jsonl\n")).unwrap();
        assert_eq!(
            ok.observers,
            vec![ObserverSpec::Telemetry(PathBuf::from("t.jsonl"))]
        );
    }

    #[test]
    fn roundtrip_covers_streamed_sources() {
        // streamed-csv: a path token, like csv: but bounded-memory.
        let from_file = Scenario::new("etl", TraceSource::streamed_csv("data/eth.csv"), 3)
            .with_observers([ObserverSpec::StreamCsv(PathBuf::from("out"))]);
        let text = from_file.to_text();
        assert!(text.contains("trace = streamed-csv:data/eth.csv"), "{text}");
        assert_eq!(Scenario::parse(&text).unwrap(), from_file);

        // streamed generator: the full WorkloadConfig rides along as
        // workload.* keys so the spec stays self-contained.
        let workload = Scale::quick().workload;
        let generated = Scenario::new("big", TraceSource::StreamedGenerated(workload.clone()), 3)
            .with_observers([ObserverSpec::StreamCsv(PathBuf::from("out"))]);
        let text = generated.to_text();
        assert!(text.contains("trace = streamed"), "{text}");
        assert!(
            text.contains(&format!(
                "workload.initial_accounts = {}",
                workload.initial_accounts
            )),
            "{text}"
        );
        let back = Scenario::parse(&text).unwrap();
        assert_eq!(back, generated);
        assert_eq!(back.to_text(), text);
    }

    #[test]
    fn validate_rejects_streamed_source_with_collect_observer() {
        let workload = Scale::quick().workload;
        let streamed = Scenario::new("s", TraceSource::StreamedGenerated(workload), 3);
        // Default observers are [collect]: incompatible with a source
        // that promises bounded memory.
        let err = streamed.validate().unwrap_err();
        assert!(matches!(err, Error::ParseScenario { line: 0, .. }), "{err}");
        assert!(err.to_string().contains("streamed trace source"), "{err}");
        assert!(err.to_string().contains("collect"), "{err}");
        // Swapping to a streaming observer fixes it.
        let fixed = Scenario::new("s", TraceSource::streamed_csv("data/eth.csv"), 3)
            .with_observers([ObserverSpec::StreamCsv(PathBuf::from("out"))]);
        assert!(fixed.validate().is_ok());
    }

    #[test]
    fn node_target_roundtrips_and_rejects_collect() {
        let node = Scenario::full_protocol(&Scale::quick()).with_target(RunTarget::Node);
        let text = node.to_text();
        assert!(text.contains("target = node"), "{text}");
        let back = Scenario::parse(&text).unwrap();
        assert_eq!(back, node);
        assert_eq!(back.target, RunTarget::Node);
        // Offline scenarios never emit the key, so checked-in files are
        // byte-stable across the target's introduction.
        let offline = Scenario::full_protocol(&Scale::quick());
        assert!(
            !offline.to_text().contains("target"),
            "{}",
            offline.to_text()
        );
        assert_eq!(
            Scenario::parse(&offline.to_text()).unwrap().target,
            RunTarget::Offline
        );

        // Node target + collect observer: rows live on the service, so
        // there is nothing for collect to fill.
        let bad = quick_effectiveness().with_target(RunTarget::Node);
        let err = bad.validate().unwrap_err();
        assert!(matches!(err, Error::ParseScenario { line: 0, .. }), "{err}");
        assert!(err.to_string().contains("node/replay target"), "{err}");
        assert!(err.to_string().contains("collect"), "{err}");

        let err = Scenario::parse("name = x\ntrace = generated\neval_epochs = 1\ntarget = moon\n")
            .unwrap_err();
        assert!(err.to_string().contains("unknown target"), "{err}");
    }

    #[test]
    fn run_target_check_accepts_offline_specs_unconditionally() {
        // The offline arm imposes no target rules: collect observers,
        // streaming observers and grids are all the simulator's business.
        let collect = quick_effectiveness();
        assert!(RunTarget::Offline.validate(&collect).is_ok());
        let streaming = Scenario::full_protocol(&Scale::quick());
        assert!(RunTarget::Offline.validate(&streaming).is_ok());
    }

    #[test]
    fn run_target_check_rejects_collect_observer_for_node() {
        // Node rejection arm: rows live on the service, so an observer
        // that fills an in-memory result set has nothing to fill.
        let collect = quick_effectiveness();
        let err = RunTarget::Node.validate(&collect).unwrap_err();
        assert!(matches!(err, Error::ParseScenario { line: 0, .. }), "{err}");
        assert!(err.to_string().contains("node/replay target"), "{err}");
        assert!(err.to_string().contains("collect"), "{err}");
    }

    #[test]
    fn run_target_check_accepts_streaming_observers_for_node() {
        // The node arm only rejects in-process accumulation; stream-csv
        // specs (every checked-in node scenario) pass untouched.
        let streaming = Scenario::full_protocol(&Scale::quick());
        assert!(RunTarget::Node.validate(&streaming).is_ok());
    }

    #[test]
    fn cells_for_retags_without_mutating_the_spec() {
        // An offline spec with streaming observers expands fine for a
        // node driver and yields the same cells as the offline view.
        let scenario = Scenario::full_protocol(&Scale::quick());
        let node_cells = scenario.cells_for(RunTarget::Node).unwrap();
        assert_eq!(node_cells, scenario.cells().unwrap());
        assert_eq!(scenario.target, RunTarget::Offline);
        // A collect spec is rejected through the same path...
        let err = quick_effectiveness()
            .cells_for(RunTarget::Node)
            .unwrap_err();
        assert!(err.to_string().contains("node/replay target"), "{err}");
        // ...but stays valid for its declared offline target.
        assert!(quick_effectiveness().cells_for(RunTarget::Offline).is_ok());
    }

    #[test]
    fn parse_errors_carry_line_numbers() {
        let text = quick_effectiveness().to_text();
        let broken = text.replace("axis.k = 4, 16, 32", "axis.k = 4, banana");
        let err = Scenario::parse(&broken).unwrap_err();
        assert!(
            matches!(err, Error::ParseScenario { line, .. } if line > 0),
            "{err}"
        );
        assert!(err.to_string().contains("banana"));

        let err = Scenario::parse("nonsense line\n").unwrap_err();
        assert!(err.to_string().contains("line 1"));

        let err = Scenario::parse("name = x\ntrace = generated\n").unwrap_err();
        assert!(err.to_string().contains("eval_epochs"));

        let err = Scenario::parse("name = x\ntrace = floppy:disk\neval_epochs = 1\n").unwrap_err();
        assert!(err.to_string().contains("unknown trace source"));

        let err =
            Scenario::parse("name = x\ntrace = streamed-csv:\neval_epochs = 1\n").unwrap_err();
        assert!(err.to_string().contains("streamed-csv trace needs a path"));

        let err = Scenario::parse(&text.replace("strategies = Pilot,", "strategies = Pilot2,"))
            .unwrap_err();
        assert!(err.to_string().contains("unknown strategy"));
    }

    #[test]
    fn validate_rejects_inconsistent_scenarios() {
        let base = quick_effectiveness();
        let mut s = base.clone();
        s.strategies.clear();
        assert!(s.validate().is_err());
        let mut s = base.clone();
        s.train_fraction = 1.0;
        assert!(s.validate().is_err());
        let mut s = base.clone();
        s.eval_epochs = 0;
        assert!(s.validate().is_err());
        let mut s = base.clone();
        s.observers.clear();
        assert!(s.validate().is_err());
        let mut s = base.clone();
        s.grid.push(GridAxis::Shards(vec![0]));
        assert!(s.validate().is_err());
        // Duplicate strategies and duplicate grid points would race on
        // one stream-csv path; both are spec mistakes.
        let mut s = base.clone();
        s.strategies.push(Strategy::Mosaic);
        assert!(s
            .validate()
            .unwrap_err()
            .to_string()
            .contains("duplicate strategy"));
        let mut s = base.clone();
        s.grid.push(GridAxis::Shards(vec![4])); // "k = 4" already on the k axis
        assert!(s
            .validate()
            .unwrap_err()
            .to_string()
            .contains("duplicate grid point"));
        let mut s = base.clone();
        s.observers = vec![
            ObserverSpec::StreamCsv(PathBuf::from("out")),
            ObserverSpec::StreamCsv(PathBuf::from("out")),
        ];
        assert!(s
            .validate()
            .unwrap_err()
            .to_string()
            .contains("duplicate observer"));
        assert!(base.validate().is_ok());
    }

    #[test]
    fn file_stems_are_filesystem_safe() {
        let cells = quick_effectiveness().cells().unwrap();
        assert_eq!(cells[0].file_stem(false), "k-4-pilot");
        assert_eq!(cells[0].file_stem(true), "pilot");
        let greek = CellPoint {
            label: "η = 5".to_string(),
            params: SystemParams::default(),
            capacity: Capacity::Unbounded,
        };
        assert_eq!(slug(&greek.label), "eta-5");
        assert_eq!(slug(&Capacity::Unbounded.label()), "capacity-unbounded");
        assert_eq!(slug("β = 0.25"), "beta-0.25");
    }

    #[test]
    fn save_and_load_roundtrip_through_disk() {
        let scenario = Scenario::beta_sweep(&Scale::quick());
        let dir = std::env::temp_dir().join("mosaic-scenario-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("beta.scenario");
        scenario.save(&path).unwrap();
        assert_eq!(Scenario::load(&path).unwrap(), scenario);
        std::fs::remove_file(&path).ok();
        assert!(matches!(
            Scenario::load(dir.join("missing.scenario")).unwrap_err(),
            Error::Io { .. }
        ));
    }
}
