//! Figure 1 normalisation.
//!
//! The paper's radar chart normalises every axis so that "the maximum
//! and minimum values across all dimensions are normalized to 5 and 1,
//! respectively", with efficiency defined as the reciprocal of overhead
//! and the workload balance index as the reciprocal of deviation
//! (footnote 3).

/// One radar axis: a label plus the raw *higher-is-better* value per
/// system.
#[derive(Debug, Clone, PartialEq)]
pub struct RadarAxis {
    /// Axis label (e.g. "Computation Efficiency").
    pub label: String,
    /// Raw oriented values, one per system (same order across axes).
    pub values: Vec<f64>,
}

impl RadarAxis {
    /// Creates an axis from already-oriented values.
    pub fn new(label: impl Into<String>, values: Vec<f64>) -> Self {
        RadarAxis {
            label: label.into(),
            values,
        }
    }

    /// Creates an axis from overheads (lower-is-better) by taking
    /// reciprocals, as the paper does for the efficiency axes.
    ///
    /// # Panics
    ///
    /// Panics if any overhead is not strictly positive.
    pub fn from_overheads(label: impl Into<String>, overheads: &[f64]) -> Self {
        assert!(
            overheads.iter().all(|&v| v > 0.0),
            "overheads must be positive to invert"
        );
        RadarAxis {
            label: label.into(),
            values: overheads.iter().map(|v| 1.0 / v).collect(),
        }
    }

    /// Normalises the axis to `[1, 5]`: max → 5, min → 1, linear in
    /// between. If all values are equal, everything maps to 3.
    pub fn normalized(&self) -> Vec<f64> {
        let min = self.values.iter().copied().fold(f64::INFINITY, f64::min);
        let max = self
            .values
            .iter()
            .copied()
            .fold(f64::NEG_INFINITY, f64::max);
        if max <= min {
            return vec![3.0; self.values.len()];
        }
        self.values
            .iter()
            .map(|v| 1.0 + 4.0 * (v - min) / (max - min))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalizes_to_1_5_range() {
        let axis = RadarAxis::new("x", vec![10.0, 20.0, 30.0]);
        let n = axis.normalized();
        assert_eq!(n, vec![1.0, 3.0, 5.0]);
    }

    #[test]
    fn equal_values_map_to_midpoint() {
        let axis = RadarAxis::new("x", vec![7.0, 7.0]);
        assert_eq!(axis.normalized(), vec![3.0, 3.0]);
    }

    #[test]
    fn reciprocal_orientation() {
        // Overheads 1 and 4: efficiencies 1.0 and 0.25 -> 5 and 1.
        let axis = RadarAxis::from_overheads("eff", &[1.0, 4.0]);
        assert_eq!(axis.normalized(), vec![5.0, 1.0]);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_overhead_panics() {
        let _ = RadarAxis::from_overheads("eff", &[0.0, 1.0]);
    }
}
