//! Sequential vs parallel execution of the effectiveness grid (25
//! independent experiment cells) on the quick synthetic trace — the
//! speedup the order-stable worker pool buys on a multicore host.

use criterion::{criterion_group, criterion_main, Criterion};
use mosaic_sim::experiments;
use mosaic_sim::{Parallelism, Scale};

fn bench_grid_execution(c: &mut Criterion) {
    let scale = Scale::quick();
    let mut group = c.benchmark_group("effectiveness_grid");
    group.sample_size(3);
    group.bench_function("sequential", |b| {
        b.iter(|| experiments::effectiveness_grid_with(&scale, Parallelism::Sequential))
    });
    group.bench_function("parallel_auto", |b| {
        b.iter(|| experiments::effectiveness_grid_with(&scale, Parallelism::Auto))
    });
    group.bench_function("parallel_4", |b| {
        b.iter(|| experiments::effectiveness_grid_with(&scale, Parallelism::Threads(4)))
    });
    group.finish();
}

criterion_group!(benches, bench_grid_execution);
criterion_main!(benches);
