//! Criterion benches for the chain substrate: epoch processing under
//! the capacity model, beacon-chain commitment, and SHA-256 throughput.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};

use mosaic_chain::{BeaconChain, Ledger};
use mosaic_types::hash::sha256;
use mosaic_types::{
    AccountId, AccountShardMap, BlockHeight, EpochId, MigrationRequest, ShardId, SystemParams,
    Transaction, TxId,
};

fn sample_txs(n: u64) -> Vec<Transaction> {
    (0..n)
        .map(|i| {
            Transaction::new(
                TxId::new(i),
                AccountId::new(i % 997),
                AccountId::new((i * 31 + 7) % 997),
                BlockHeight::new(i / 25),
            )
        })
        .collect()
}

fn bench_process_epoch(c: &mut Criterion) {
    let params = SystemParams::builder().shards(16).tau(300).build().unwrap();
    let txs = sample_txs(7_500);
    let mut group = c.benchmark_group("ledger");
    group.throughput(Throughput::Elements(txs.len() as u64));
    group.bench_function("process_epoch_7500tx_k16", |b| {
        b.iter_batched(
            || Ledger::new(params, AccountShardMap::new(16), 64).unwrap(),
            |mut ledger| ledger.process_epoch(&txs),
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

fn bench_beacon_commit(c: &mut Criterion) {
    let requests: Vec<MigrationRequest> = (0..2_000u64)
        .map(|i| {
            MigrationRequest::new(
                AccountId::new(i),
                ShardId::new((i % 16) as u16),
                ShardId::new(((i + 1) % 16) as u16),
                EpochId::new(0),
                (i % 100) as f64,
            )
            .unwrap()
        })
        .collect();
    c.bench_function("beacon_commit_2000_pending_cap_500", |b| {
        b.iter_batched(
            || {
                let mut bc = BeaconChain::new();
                for mr in &requests {
                    bc.submit(*mr);
                }
                bc
            },
            |mut bc| bc.commit_epoch(EpochId::new(0), 500),
            BatchSize::SmallInput,
        )
    });
}

fn bench_sha256(c: &mut Criterion) {
    let data = vec![0xabu8; 4096];
    let mut group = c.benchmark_group("sha256");
    group.throughput(Throughput::Bytes(data.len() as u64));
    group.bench_function("4096B", |b| b.iter(|| sha256(&data)));
    group.finish();
}

criterion_group!(
    benches,
    bench_process_epoch,
    bench_beacon_commit,
    bench_sha256
);
criterion_main!(benches);
