//! Sequential-oracle versus pool-parallel allocator hot paths: the
//! Metis-style multilevel partitioner and G-TxAllo on the same
//! community graph, across graph sizes.
//!
//! Besides the criterion-style console report, a full (non `--test`)
//! run records the measured minima in `BENCH_alloc.json` at the
//! repository root so the perf trajectory is tracked across PRs
//! (`bench_check` gates CI on it). The file records the worker and CPU
//! counts of the measuring machine: a thread speedup is only meaningful
//! when `cpus > 2`, and `bench_check` skips the absolute speedup gate
//! otherwise (small boxes still regression-check the ratios).
//!
//! The parallel side dispatches on the persistent worker pool
//! (`mosaic_metrics::parallel`): workers are spawned once on the first
//! parallel call and reused across every size step, so the timings
//! reflect barrier wake-ups, not thread creation. The smallest step
//! sits near the adaptive sequential cutoff — set `MOSAIC_PAR_CUTOFF=1`
//! to force the pool on everywhere when profiling it.
//!
//! ```text
//! cargo bench -p mosaic-bench --bench allocators_parallel            # full
//! cargo bench -p mosaic-bench --bench allocators_parallel -- --test  # smoke
//! MOSAIC_BENCH_WORKERS=8 cargo bench -p mosaic-bench --bench allocators_parallel
//! ```

use std::num::NonZeroUsize;
use std::path::Path;
use std::time::{Duration, Instant};

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mosaic_metrics::parallel::Parallelism;
use mosaic_partition::MetisPartitioner;
use mosaic_txallo::{GTxAllo, TxAlloConfig};
use mosaic_txgraph::{GraphBuilder, TxGraph};
use mosaic_workload::{generate, WorkloadConfig};

const SHARDS: u16 = 16;

/// One community-structured interaction graph per size step.
fn build_graph(accounts: usize, blocks: u64) -> TxGraph {
    let config = WorkloadConfig::small_test(0xA110C)
        .with_accounts(accounts)
        .with_blocks(blocks)
        .with_txs_per_block(10)
        .with_communities((accounts / 80).max(8));
    let trace = generate(&config).into_trace();
    let mut builder = GraphBuilder::new();
    builder.add_transactions(trace.transactions());
    builder.build()
}

/// Minimum wall-clock over `reps` runs of `f`.
fn measure<R>(reps: usize, mut f: impl FnMut() -> R) -> Duration {
    let mut best = Duration::MAX;
    for _ in 0..reps {
        let start = Instant::now();
        std::hint::black_box(f());
        best = best.min(start.elapsed());
    }
    best
}

/// Worker count under test: `MOSAIC_BENCH_WORKERS` or every available
/// CPU (at least 2 so the parallel code path always engages).
fn bench_workers() -> usize {
    std::env::var("MOSAIC_BENCH_WORKERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| cpus().max(2))
}

fn cpus() -> usize {
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

struct Row {
    allocator: &'static str,
    nodes: usize,
    edges: usize,
    seq_ms: f64,
    par_ms: f64,
}

fn write_json(rows: &[Row], workers: usize) {
    let mut results = String::new();
    for (i, row) in rows.iter().enumerate() {
        if i > 0 {
            results.push(',');
        }
        results.push_str(&format!(
            "\n    {{\"allocator\": \"{}\", \"nodes\": {}, \"edges\": {}, \
             \"seq_ms\": {:.3}, \"par_ms\": {:.3}, \"speedup\": {:.2}}}",
            row.allocator,
            row.nodes,
            row.edges,
            row.seq_ms,
            row.par_ms,
            row.seq_ms / row.par_ms.max(1e-9)
        ));
    }
    let json = format!(
        "{{\n  \"bench\": \"allocators_parallel\",\n  \"unit\": \"ms (min over reps, one full allocation)\",\n  \"workers\": {workers},\n  \"cpus\": {},\n  \"shards\": {SHARDS},\n  \"results\": [{results}\n  ]\n}}\n",
        cpus()
    );
    // Repo root, resolved from the bench crate's manifest dir so the
    // file lands in the same place regardless of invocation cwd.
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_alloc.json");
    match std::fs::write(&path, json) {
        Ok(()) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write {}: {e}", path.display()),
    }
}

fn bench_parallel_allocators(c: &mut Criterion) {
    // Detect smoke mode from the CLI directly (not via the shim's
    // internals) so this bench still compiles against real criterion,
    // which exposes no such query but accepts the same --test flag.
    let smoke = std::env::args().any(|a| a == "--test");
    let workers = bench_workers();
    let parallel = Parallelism::Threads(workers);

    // (accounts, blocks) size steps; the largest is the gated one.
    let sizes: &[(usize, u64)] = if smoke {
        &[(800, 800)]
    } else {
        &[(2_000, 2_000), (8_000, 8_000), (24_000, 20_000)]
    };
    let reps = if smoke { 1 } else { 3 };

    let mut rows = Vec::new();
    let mut group = c.benchmark_group("parallel_allocators");
    group.sample_size(if smoke { 1 } else { 3 });
    for &(accounts, blocks) in sizes {
        let graph = build_graph(accounts, blocks);
        let nodes = graph.node_count();
        let edges = graph.edge_count();

        let metis_seq = MetisPartitioner::default();
        let metis_par = MetisPartitioner::default().with_parallelism(parallel);
        let txallo_seq = GTxAllo::default();
        let txallo_par = GTxAllo::new(TxAlloConfig::default().with_parallelism(parallel));

        // The parallel paths must reproduce the sequential oracles
        // exactly — a wrong answer makes the timing meaningless.
        assert_eq!(
            metis_par.partition(&graph, SHARDS),
            metis_seq.partition(&graph, SHARDS),
            "parallel Metis diverged from the sequential oracle"
        );
        assert_eq!(
            txallo_par.partition(&graph, SHARDS),
            txallo_seq.partition(&graph, SHARDS),
            "parallel G-TxAllo diverged from the sequential oracle"
        );

        group.bench_with_input(BenchmarkId::new("metis_seq", nodes), &graph, |b, g| {
            b.iter(|| metis_seq.partition(g, SHARDS))
        });
        group.bench_with_input(BenchmarkId::new("metis_par", nodes), &graph, |b, g| {
            b.iter(|| metis_par.partition(g, SHARDS))
        });
        group.bench_with_input(BenchmarkId::new("g_txallo_seq", nodes), &graph, |b, g| {
            b.iter(|| txallo_seq.partition(g, SHARDS))
        });
        group.bench_with_input(BenchmarkId::new("g_txallo_par", nodes), &graph, |b, g| {
            b.iter(|| txallo_par.partition(g, SHARDS))
        });

        rows.push(Row {
            allocator: "metis",
            nodes,
            edges,
            seq_ms: measure(reps, || metis_seq.partition(&graph, SHARDS)).as_secs_f64() * 1e3,
            par_ms: measure(reps, || metis_par.partition(&graph, SHARDS)).as_secs_f64() * 1e3,
        });
        rows.push(Row {
            allocator: "g_txallo",
            nodes,
            edges,
            seq_ms: measure(reps, || txallo_seq.partition(&graph, SHARDS)).as_secs_f64() * 1e3,
            par_ms: measure(reps, || txallo_par.partition(&graph, SHARDS)).as_secs_f64() * 1e3,
        });
    }
    group.finish();

    for row in &rows {
        println!(
            "parallel_allocators/{}/{} nodes: seq {:.3} ms, par({} workers) {:.3} ms ({:.2}x)",
            row.allocator,
            row.nodes,
            row.seq_ms,
            workers,
            row.par_ms,
            row.seq_ms / row.par_ms.max(1e-9)
        );
    }
    if !smoke {
        write_json(&rows, workers);
    }
}

criterion_group!(benches, bench_parallel_allocators);
criterion_main!(benches);
