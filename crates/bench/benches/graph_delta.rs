//! Full-history graph maintenance: per-epoch full CSR rebuild (the
//! pre-delta evaluation hot path, kept as the reference oracle) versus
//! incremental `drain_delta` + `merge_delta` accretion, across epoch
//! counts.
//!
//! Besides the criterion-style console report, a full (non `--test`)
//! run records the measured means in `BENCH_graph.json` at the
//! repository root so the perf trajectory is tracked across PRs.

use std::path::Path;
use std::time::{Duration, Instant};

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mosaic_txgraph::{GraphBuilder, TxGraph};
use mosaic_types::{BlockHeight, Transaction};
use mosaic_workload::{generate, WorkloadConfig};

/// One window of committed transactions per evaluation epoch.
fn epoch_windows(txs: &[Transaction], epochs: usize) -> Vec<&[Transaction]> {
    let per_epoch = txs.len().div_ceil(epochs);
    txs.chunks(per_epoch).take(epochs).collect()
}

/// The old hot path: one cumulative builder, a full CSR reconstruction
/// after every epoch.
fn full_rebuild(windows: &[&[Transaction]]) -> TxGraph {
    let mut builder = GraphBuilder::new();
    let mut graph = TxGraph::default();
    for window in windows {
        builder.add_transactions(*window);
        graph = builder.build();
    }
    graph
}

/// The delta path: a window builder drained into a maintained CSR.
fn merge_delta(windows: &[&[Transaction]]) -> TxGraph {
    let mut builder = GraphBuilder::new();
    let mut graph = TxGraph::default();
    for window in windows {
        builder.add_transactions(*window);
        graph.merge_delta(&builder.drain_delta());
    }
    graph
}

/// Minimum wall-clock over `reps` runs of `f`.
fn measure<R>(reps: usize, mut f: impl FnMut() -> R) -> Duration {
    let mut best = Duration::MAX;
    for _ in 0..reps {
        let start = Instant::now();
        std::hint::black_box(f());
        best = best.min(start.elapsed());
    }
    best
}

struct Row {
    epochs: usize,
    txs: usize,
    full_rebuild_ms: f64,
    merge_delta_ms: f64,
}

fn write_json(rows: &[Row], blocks: u64, txs_per_block: usize) {
    let mut results = String::new();
    for (i, row) in rows.iter().enumerate() {
        if i > 0 {
            results.push(',');
        }
        results.push_str(&format!(
            "\n    {{\"epochs\": {}, \"txs\": {}, \"full_rebuild_ms\": {:.3}, \"merge_delta_ms\": {:.3}, \"speedup\": {:.2}}}",
            row.epochs,
            row.txs,
            row.full_rebuild_ms,
            row.merge_delta_ms,
            row.full_rebuild_ms / row.merge_delta_ms.max(1e-9)
        ));
    }
    let json = format!(
        "{{\n  \"bench\": \"graph_delta\",\n  \"unit\": \"ms (min over reps, whole multi-epoch accretion)\",\n  \"trace\": {{\"blocks\": {blocks}, \"txs_per_block\": {txs_per_block}}},\n  \"results\": [{results}\n  ]\n}}\n"
    );
    // Repo root, resolved from the bench crate's manifest dir so the
    // file lands in the same place regardless of invocation cwd.
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_graph.json");
    match std::fs::write(&path, json) {
        Ok(()) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write {}: {e}", path.display()),
    }
}

fn bench_graph_delta(c: &mut Criterion) {
    // Detect smoke mode from the CLI directly (not via the shim's
    // internals) so this bench still compiles against real criterion,
    // which exposes no such query but accepts the same --test flag.
    let smoke = std::env::args().any(|a| a == "--test");
    let config = WorkloadConfig::small_test(0xDE17A);
    let trace = generate(&config).into_trace();
    let txs = trace.block_range(
        BlockHeight::new(0),
        BlockHeight::new(config.blocks.saturating_add(1)),
    );

    let epoch_counts: &[usize] = if smoke { &[4] } else { &[4, 16, 64] };
    let reps = if smoke { 1 } else { 5 };

    let mut rows = Vec::new();
    let mut group = c.benchmark_group("graph_accretion");
    group.sample_size(if smoke { 1 } else { 5 });
    for &epochs in epoch_counts {
        let windows = epoch_windows(txs, epochs);
        // The delta path must reproduce the oracle exactly.
        assert_eq!(
            merge_delta(&windows),
            full_rebuild(&windows),
            "delta accretion diverged from the full-rebuild oracle"
        );

        group.bench_with_input(
            BenchmarkId::new("full_rebuild", epochs),
            &windows,
            |b, w| b.iter(|| full_rebuild(w)),
        );
        group.bench_with_input(BenchmarkId::new("merge_delta", epochs), &windows, |b, w| {
            b.iter(|| merge_delta(w))
        });

        rows.push(Row {
            epochs,
            txs: txs.len(),
            full_rebuild_ms: measure(reps, || full_rebuild(&windows)).as_secs_f64() * 1e3,
            merge_delta_ms: measure(reps, || merge_delta(&windows)).as_secs_f64() * 1e3,
        });
    }
    group.finish();

    for row in &rows {
        println!(
            "graph_accretion/{} epochs: full_rebuild {:.3} ms, merge_delta {:.3} ms ({:.1}x)",
            row.epochs,
            row.full_rebuild_ms,
            row.merge_delta_ms,
            row.full_rebuild_ms / row.merge_delta_ms.max(1e-9)
        );
    }
    if !smoke {
        write_json(&rows, config.blocks, config.txs_per_block);
    }
}

criterion_group!(benches, bench_graph_delta);
criterion_main!(benches);
