//! Criterion benches for the miner-side allocators (Table IV rows):
//! Metis-like multilevel partitioning, G-TxAllo, and the A-TxAllo
//! incremental update, all on the same synthetic community graph.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};

use mosaic_partition::{GlobalAllocator, HashAllocator, MetisPartitioner};
use mosaic_txallo::{ATxAllo, GTxAllo};
use mosaic_txgraph::GraphBuilder;
use mosaic_workload::{generate, WorkloadConfig};

/// A mid-size workload: large enough to show the asymptotic gap between
/// the global algorithms and the adaptive/client paths, small enough for
/// a criterion run (seconds per iteration).
fn bench_workload() -> WorkloadConfig {
    WorkloadConfig::small_test(7)
        .with_accounts(5_000)
        .with_blocks(5_000)
        .with_txs_per_block(10)
        .with_communities(64)
}

fn bench_global_allocators(c: &mut Criterion) {
    let trace = generate(&bench_workload()).into_trace();
    let mut builder = GraphBuilder::new();
    builder.add_transactions(trace.transactions());
    let graph = builder.build();
    let k = 16u16;

    let mut group = c.benchmark_group("global_allocators");
    group.sample_size(10);
    group.bench_function("metis", |b| {
        b.iter(|| MetisPartitioner::default().partition(&graph, k))
    });
    group.bench_function("g_txallo", |b| {
        b.iter(|| GTxAllo::default().partition(&graph, k))
    });
    group.bench_function("hash", |b| {
        b.iter(|| HashAllocator::chainspace().allocate(&graph, k))
    });
    group.finish();
}

fn bench_adaptive_update(c: &mut Criterion) {
    let trace = generate(&bench_workload()).into_trace();
    let (train, eval) = trace.split_at_fraction(0.9);
    let mut builder = GraphBuilder::new();
    builder.add_transactions(train);
    let graph = builder.build();
    let k = 16u16;
    let phi = GTxAllo::default().allocate(&graph, k);

    c.bench_function("a_txallo_update_window", |b| {
        b.iter_batched(
            || phi.clone(),
            |mut phi| ATxAllo::default().update(&mut phi, eval),
            BatchSize::SmallInput,
        )
    });
}

fn bench_graph_build(c: &mut Criterion) {
    let trace = generate(&bench_workload()).into_trace();
    c.bench_function("graph_build_50k_txs", |b| {
        b.iter(|| {
            let mut builder = GraphBuilder::new();
            builder.add_transactions(trace.transactions());
            builder.build()
        })
    });
}

criterion_group!(
    benches,
    bench_global_allocators,
    bench_adaptive_update,
    bench_graph_build
);
criterion_main!(benches);
