//! Criterion benches for the client-side path (Table IV, "Pilot" row):
//! one full Pilot decision at k = 4 / 16 / 32, plus its parts (Ψ
//! derivation, fusion, potential argmax).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use mosaic_core::{CounterpartySet, Pilot, PilotInput};
use mosaic_types::{AccountId, AccountShardMap, ShardId};

/// A client state with `n` distinct counterparties spread over k shards.
fn client_state(n: u64, k: u16) -> (CounterpartySet, AccountShardMap) {
    let mut set = CounterpartySet::new();
    let mut phi = AccountShardMap::new(k);
    for i in 0..n {
        let cp = AccountId::new(1000 + i);
        set.add(cp, (i % 5 + 1) as u32);
        phi.assign(cp, ShardId::new((i % u64::from(k)) as u16))
            .unwrap();
    }
    (set, phi)
}

fn bench_pilot_decision(c: &mut Criterion) {
    let mut group = c.benchmark_group("pilot_decide");
    for &k in &[4u16, 16, 32] {
        // The paper's average client has ~2|T|/|A| ≈ 15 interactions.
        let (set, phi) = client_state(15, k);
        let omega: Vec<f64> = (0..k).map(|i| 100.0 + f64::from(i)).collect();
        let pilot = Pilot::new(2.0);
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, _| {
            b.iter(|| {
                // The full client-side path: Equation 1 (Ψ from the
                // counterparty multiset under current ϕ) + Algorithm 1.
                let psi = set.interaction_vector(&phi);
                pilot.decide(&PilotInput {
                    psi: &psi,
                    omega: &omega,
                    current: ShardId::new(0),
                })
            })
        });
    }
    group.finish();
}

fn bench_interaction_vector(c: &mut Criterion) {
    let mut group = c.benchmark_group("interaction_vector");
    for &n in &[10u64, 100, 1000] {
        let (set, phi) = client_state(n, 16);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| set.interaction_vector(&phi))
        });
    }
    group.finish();
}

fn bench_potential_argmax(c: &mut Criterion) {
    let psi: Vec<f64> = (0..32).map(|i| (i % 7) as f64).collect();
    let omega: Vec<f64> = (0..32).map(|i| 50.0 + i as f64).collect();
    c.bench_function("potential_argmax_k32", |b| {
        b.iter(|| mosaic_core::potential::argmax_potential(&psi, &omega, 2.0))
    });
}

criterion_group!(
    benches,
    bench_pilot_decision,
    bench_interaction_vector,
    bench_potential_argmax
);
criterion_main!(benches);
