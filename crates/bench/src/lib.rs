//! Shared plumbing for the report binaries and criterion benches.
//!
//! Every table and figure of the paper has a dedicated binary, and every
//! binary is driven by a declarative [`Scenario`] — either a checked-in
//! spec file (`--scenario scenarios/effectiveness-default.scenario`) or,
//! when no file is given, the binary's preset at the `MOSAIC_SCALE`
//! scale:
//!
//! ```text
//! cargo run -p mosaic-bench --release --bin table1   # cross-shard ratio
//! cargo run -p mosaic-bench --release --bin table2   # throughput
//! cargo run -p mosaic-bench --release --bin table3   # workload deviation
//! cargo run -p mosaic-bench --release --bin table4   # runtime + input size
//! cargo run -p mosaic-bench --release --bin table5   # future-knowledge sweep
//! cargo run -p mosaic-bench --release --bin table6   # framework comparison
//! cargo run -p mosaic-bench --release --bin fig1     # radar series
//! cargo run -p mosaic-bench --release --bin all_experiments
//! cargo run -p mosaic-bench --release --bin ablation # policy ablation
//! cargo run -p mosaic-bench --release --bin full_run # streamed per-epoch CSVs
//! cargo run -p mosaic-bench --release --bin scenario -- print effectiveness quick
//! ```
//!
//! All binaries accept `--scenario <file>` and honour
//! `MOSAIC_SCALE=quick|default|full` as the preset fallback.

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

use mosaic_sim::{Scale, Scenario};

/// Extracts the `--scenario <path>` (or `--scenario=<path>`) argument,
/// if present.
pub fn scenario_path_from_args() -> Option<String> {
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == "--scenario" {
            return args.next().or_else(|| {
                eprintln!("--scenario needs a file path");
                std::process::exit(2);
            });
        }
        if let Some(path) = arg.strip_prefix("--scenario=") {
            return Some(path.to_string());
        }
    }
    None
}

/// Resolves the scenario driving a report binary: `--scenario <file>`
/// loads a checked-in spec; otherwise `preset` is applied to the
/// `MOSAIC_SCALE` scale. Prints the standard experiment header.
///
/// Exits with status 2 on an unreadable or malformed scenario file.
pub fn scenario_from_args(experiment: &str, preset: impl FnOnce(&Scale) -> Scenario) -> Scenario {
    let scenario = match scenario_path_from_args() {
        Some(path) => match Scenario::load(&path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("failed to load scenario {path}: {e}");
                std::process::exit(2);
            }
        },
        None => preset(&Scale::from_env()),
    };
    print_header(experiment, &scenario);
    scenario
}

/// Prints the standard two-line experiment header for a scenario.
pub fn print_header(experiment: &str, scenario: &Scenario) {
    println!("== {experiment} ==");
    match scenario.workload() {
        Some(w) => println!(
            "scenario: {} ({} blocks x {} txs/block, tau = {}, {} eval epochs)",
            scenario.name,
            w.blocks,
            w.txs_per_block,
            scenario.base.tau(),
            scenario.eval_epochs
        ),
        None => println!(
            "scenario: {} (csv trace, tau = {}, {} eval epochs)",
            scenario.name,
            scenario.base.tau(),
            scenario.eval_epochs
        ),
    }
    println!();
}
