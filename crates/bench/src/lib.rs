//! Shared plumbing for the report binaries and criterion benches.
//!
//! Every table and figure of the paper has a dedicated binary:
//!
//! ```text
//! cargo run -p mosaic-bench --release --bin table1   # cross-shard ratio
//! cargo run -p mosaic-bench --release --bin table2   # throughput
//! cargo run -p mosaic-bench --release --bin table3   # workload deviation
//! cargo run -p mosaic-bench --release --bin table4   # runtime + input size
//! cargo run -p mosaic-bench --release --bin table5   # future-knowledge sweep
//! cargo run -p mosaic-bench --release --bin table6   # framework comparison
//! cargo run -p mosaic-bench --release --bin fig1     # radar series
//! cargo run -p mosaic-bench --release --bin all_experiments
//! cargo run -p mosaic-bench --release --bin ablation # policy ablation
//! cargo run -p mosaic-bench --release --bin full_run # streamed per-epoch CSVs
//! ```
//!
//! All binaries honour `MOSAIC_SCALE=quick|default|full`.

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

use mosaic_sim::Scale;

/// Resolves the scale from `MOSAIC_SCALE` and prints a standard header.
pub fn scale_from_env(experiment: &str) -> Scale {
    let scale = Scale::from_env();
    println!("== {experiment} ==");
    println!(
        "scale: {} ({} blocks x {} txs/block, tau = {}, {} eval epochs)",
        scale.label,
        scale.workload.blocks,
        scale.workload.txs_per_block,
        scale.tau,
        scale.eval_epochs
    );
    println!();
    scale
}
