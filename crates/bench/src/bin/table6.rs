//! Regenerates Table VI: the framework comparison, with measured values.

use mosaic_bench::scale_from_env;
use mosaic_sim::experiments;

fn main() {
    let scale = scale_from_env("Table VI: framework comparison");
    let cells = experiments::effectiveness_grid(&scale);
    println!("{}", experiments::table6(&cells, &scale));
}
