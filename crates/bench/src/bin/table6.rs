//! Regenerates Table VI: the framework comparison, with measured values.

use mosaic_bench::scenario_from_args;
use mosaic_sim::{experiments, Scenario};

fn main() {
    let scenario = scenario_from_args("Table VI: framework comparison", Scenario::effectiveness);
    let cells = experiments::run_scenario(&scenario);
    println!("{}", experiments::table6(&cells, &scenario));
}
