//! Scenario tooling: print presets as canonical `.scenario` text and
//! validate checked-in spec files.
//!
//! ```text
//! # regenerate a checked-in spec
//! cargo run -p mosaic-bench --release --bin scenario -- \
//!     print effectiveness quick > scenarios/effectiveness-quick.scenario
//!
//! # CI: every spec parses, validates, and is in canonical form
//! cargo run -p mosaic-bench --release --bin scenario -- validate scenarios/*.scenario
//! ```
//!
//! `validate` additionally rejects files that are not byte-identical to
//! their canonical serialisation ([`Scenario::to_text`]), so checked-in
//! specs never drift from the format `print` emits.

use mosaic_sim::{experiments, Scale, Scenario};

fn usage() -> ! {
    eprintln!(
        "usage:\n  scenario print <effectiveness|full-protocol|beta-sweep|ablation|huge> \
         [quick|default|full]\n  scenario validate <file>..."
    );
    std::process::exit(2);
}

fn scale_named(name: &str) -> Scale {
    match name {
        "quick" => Scale::quick(),
        "default" => Scale::default_scale(),
        "full" => Scale::full(),
        other => {
            eprintln!("unknown scale {other:?}; valid: quick, default, full");
            std::process::exit(2);
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("print") => {
            let preset = args.get(1).map(String::as_str).unwrap_or_else(|| usage());
            let scale = scale_named(args.get(2).map(String::as_str).unwrap_or("default"));
            let scenario = match preset {
                "effectiveness" => Scenario::effectiveness(&scale),
                "full-protocol" => Scenario::full_protocol(&scale),
                "beta-sweep" => Scenario::beta_sweep(&scale),
                "ablation" => experiments::ablation_base(&scale),
                // The streamed 10M-account scenario is a fixed point,
                // not scale-parameterised; the scale argument is ignored.
                "huge" => Scenario::huge(),
                other => {
                    eprintln!(
                        "unknown preset {other:?}; valid: effectiveness, full-protocol, \
                         beta-sweep, ablation, huge"
                    );
                    std::process::exit(2);
                }
            };
            print!("{}", scenario.to_text());
        }
        Some("validate") => {
            if args.len() < 2 {
                usage();
            }
            let mut failed = false;
            for path in &args[1..] {
                match Scenario::load(path) {
                    Ok(scenario) => {
                        let canonical = scenario.to_text();
                        let on_disk = std::fs::read_to_string(path).expect("load() just read it");
                        if on_disk != canonical {
                            eprintln!(
                                "{path}: NOT CANONICAL — regenerate with \
                                 `scenario print` or save via Scenario::save"
                            );
                            failed = true;
                            continue;
                        }
                        let cells = scenario.cells().expect("load() validated the scenario");
                        println!(
                            "{path}: ok — '{}', {} cells ({} points x {} strategies), \
                             {} eval epochs",
                            scenario.name,
                            cells.len(),
                            cells.len() / scenario.strategies.len(),
                            scenario.strategies.len(),
                            scenario.eval_epochs,
                        );
                    }
                    Err(e) => {
                        eprintln!("{path}: INVALID — {e}");
                        failed = true;
                    }
                }
            }
            if failed {
                std::process::exit(1);
            }
        }
        _ => usage(),
    }
}
