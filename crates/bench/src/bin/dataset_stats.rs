//! Prints descriptive statistics of the synthetic workload at the
//! selected scale — the analogue of the paper's dataset description
//! (§V-A) used to validate the Ethereum-likeness of the substitute.

use mosaic_bench::scale_from_env;
use mosaic_metrics::TextTable;
use mosaic_workload::{generate, TraceStats};

fn main() {
    let scale = scale_from_env("Dataset statistics (synthetic Ethereum analogue)");
    let workload = generate(&scale.workload);
    let stats = TraceStats::compute(workload.trace());

    let mut t = TextTable::new(["Statistic", "Value"]);
    t.push_row([
        "Transactions |T|".to_string(),
        format!("{}", stats.transactions),
    ]);
    t.push_row(["Accounts |A|".to_string(), format!("{}", stats.accounts)]);
    t.push_row(["Blocks".to_string(), format!("{}", stats.blocks)]);
    t.push_row([
        "Mean txs per account (2|T|/|A|)".to_string(),
        format!("{:.2}", stats.mean_txs_per_account),
    ]);
    t.push_row(["Max degree".to_string(), format!("{}", stats.max_degree)]);
    t.push_row([
        "Median degree".to_string(),
        format!("{}", stats.median_degree),
    ]);
    t.push_row([
        "Top-1% endpoint share".to_string(),
        format!("{:.2}%", stats.top1pct_endpoint_share * 100.0),
    ]);
    t.push_row([
        "Degree Gini".to_string(),
        format!("{:.3}", stats.degree_gini),
    ]);
    t.push_row([
        "Hub accounts".to_string(),
        format!("{}", workload.hubs().len()),
    ]);
    t.push_row([
        "Total accounts incl. churned".to_string(),
        format!("{}", workload.total_accounts()),
    ]);
    println!("{t}");
}
