//! Prints descriptive statistics of the scenario's workload — the
//! analogue of the paper's dataset description (§V-A) used to validate
//! the Ethereum-likeness of the synthetic substitute.

use mosaic_bench::scenario_from_args;
use mosaic_metrics::TextTable;
use mosaic_sim::Scenario;
use mosaic_workload::{generate, TraceStats};

fn main() {
    let scenario = scenario_from_args(
        "Dataset statistics (synthetic Ethereum analogue)",
        Scenario::full_protocol,
    );
    let Some(config) = scenario.workload() else {
        eprintln!("dataset_stats needs a generated trace source (CSV traces carry no generator description)");
        std::process::exit(2);
    };
    let workload = generate(config);
    let stats = TraceStats::compute(workload.trace());

    let mut t = TextTable::new(["Statistic", "Value"]);
    t.push_row([
        "Transactions |T|".to_string(),
        format!("{}", stats.transactions),
    ]);
    t.push_row(["Accounts |A|".to_string(), format!("{}", stats.accounts)]);
    t.push_row(["Blocks".to_string(), format!("{}", stats.blocks)]);
    t.push_row([
        "Mean txs per account (2|T|/|A|)".to_string(),
        format!("{:.2}", stats.mean_txs_per_account),
    ]);
    t.push_row(["Max degree".to_string(), format!("{}", stats.max_degree)]);
    t.push_row([
        "Median degree".to_string(),
        format!("{}", stats.median_degree),
    ]);
    t.push_row([
        "Top-1% endpoint share".to_string(),
        format!("{:.2}%", stats.top1pct_endpoint_share * 100.0),
    ]);
    t.push_row([
        "Degree Gini".to_string(),
        format!("{:.3}", stats.degree_gini),
    ]);
    t.push_row([
        "Hub accounts".to_string(),
        format!("{}", workload.hubs().len()),
    ]);
    t.push_row([
        "Total accounts incl. churned".to_string(),
        format!("{}", workload.total_accounts()),
    ]);
    println!("{t}");
}
