//! Regenerates Table V: impact of the future-knowledge ratio β.

use mosaic_bench::scenario_from_args;
use mosaic_sim::{experiments, Scenario};

fn main() {
    let scenario = scenario_from_args(
        "Table V: future knowledge (beta sweep, k = 4)",
        Scenario::beta_sweep,
    );
    println!("{}", experiments::table5(&scenario));
}
