//! Regenerates Table V: impact of the future-knowledge ratio β.

use mosaic_bench::scale_from_env;
use mosaic_sim::experiments;

fn main() {
    let scale = scale_from_env("Table V: future knowledge (beta sweep, k = 4)");
    println!("{}", experiments::table5(&scale));
}
