//! Scaling curve of the streamed epoch pipeline: epochs/sec and peak
//! RSS versus account count, recorded to `BENCH_scale.json`.
//!
//! ```text
//! bench_scale [--scenario scenarios/huge.scenario]
//!             [--accounts 100000,300000,1000000] [--depth 4]
//!             [--out BENCH_scale.json] [--max-rss-mb <ceiling>]
//! ```
//!
//! Each account count is measured in a **fresh child process** (the
//! parent re-execs itself with the internal `--one` flag): `VmHWM` in
//! `/proc/self/status` is a process-lifetime high-water mark, so two
//! sizes measured in one process would share one peak and the curve
//! would be the largest size repeated. The child scales the scenario's
//! workload to the requested account count — blocks and τ shrink by the
//! same factor, so every size runs the same number of epoch windows and
//! the trace volume stays proportional to the account count.
//!
//! The recorded `speedup` is `trace_mb / peak_rss_mb` — how many times
//! larger the trace is than the memory the streamed run actually held.
//! Streamed memory is O(accounts + window): per-account state
//! (generator population, training graph, the allocation ϕ itself)
//! plus the current and previous τ-block windows — never the
//! transaction vector. So along the *account* axis the ratio is
//! roughly flat, and along the *depth* axis (`--depth` multiplies the
//! block count at fixed accounts) the trace grows while RSS does not —
//! the entry that directly witnesses "bounded by window, not trace
//! length". `bench_check` gates the curve against the committed
//! baseline like any other `BENCH_*.json`. The file pins `"cpus": 0`:
//! the ratio is memory-only and machine-independent, so the regression
//! gate stays armed across runner classes.
//!
//! At the smallest requested size the parent additionally materialises
//! the scaled trace and byte-compares the streamed CSV against the
//! resident path — the scale curve is only meaningful if the streamed
//! pipeline computes the same experiment.
//!
//! Exit status: 0 ok, 1 RSS ceiling exceeded or verification failed,
//! 2 usage/run error.

use std::io::Write as _;
use std::process::ExitCode;
use std::time::Instant;

use mosaic_sim::runner::{self, ExperimentConfig};
use mosaic_sim::Scenario;
use mosaic_types::Transaction;
use mosaic_workload::{TraceSource, WorkloadConfig};

fn usage() -> ! {
    eprintln!(
        "usage: bench_scale [--scenario <file>] [--accounts <n,n,...>] \
         [--depth <mult>] [--out <file.json>] [--max-rss-mb <mb>]"
    );
    std::process::exit(2);
}

fn fail(message: impl std::fmt::Display) -> ! {
    eprintln!("bench_scale: {message}");
    std::process::exit(2);
}

/// Peak resident set size of this process in MB (`VmHWM`, linux only);
/// 0.0 when the field is unavailable.
fn peak_rss_mb() -> f64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
        return 0.0;
    };
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmHWM:") {
            let kb: f64 = rest
                .trim()
                .trim_end_matches("kB")
                .trim()
                .parse()
                .unwrap_or(0.0);
            return kb / 1024.0;
        }
    }
    0.0
}

/// The scenario's workload scaled to `accounts`: blocks and τ shrink by
/// the same factor so every size runs the same window count and the
/// trace volume stays proportional. `depth` then multiplies the block
/// count at fixed accounts — the axis along which the streamed
/// pipeline's memory must stay flat while the trace grows.
fn scaled(scenario: &Scenario, accounts: usize, depth: u64) -> (WorkloadConfig, ExperimentConfig) {
    let Some(workload) = scenario.trace.workload() else {
        fail("scenario's trace source is not generated; bench_scale needs workload.* to scale");
    };
    let factor = accounts as f64 / workload.initial_accounts as f64;
    let mut w = workload.clone();
    w.initial_accounts = accounts;
    w.blocks = ((workload.blocks as f64 * factor) as u64).max(2) * depth.max(1);
    let tau = ((f64::from(scenario.base.tau()) * factor) as u32).max(1);
    let params = scenario
        .base
        .with_tau(tau)
        .unwrap_or_else(|e| fail(format!("scaled tau invalid: {e}")));
    let config = ExperimentConfig::new(params, scenario.strategies[0], scenario.eval_epochs);
    (w, config)
}

/// Child mode: measure one account count, print one JSON entry line.
fn run_one(scenario_path: &str, accounts: usize, depth: u64) -> ExitCode {
    let scenario =
        Scenario::load(scenario_path).unwrap_or_else(|e| fail(format!("{scenario_path}: {e}")));
    let (workload, config) = scaled(&scenario, accounts, depth);
    let txs = workload.blocks as u128 * workload.txs_per_block as u128;
    let trace_mb = (txs as f64 * std::mem::size_of::<Transaction>() as f64) / (1024.0 * 1024.0);
    let source = TraceSource::StreamedGenerated(workload);

    let started = Instant::now();
    let summary = runner::run_streamed(&config, &source, &mut std::io::sink())
        .unwrap_or_else(|e| fail(format!("streamed run failed: {e}")));
    let seconds = started.elapsed().as_secs_f64();
    let rss = peak_rss_mb();
    println!(
        "{{\"accounts\": {}, \"blocks\": {}, \"txs\": {}, \"trace_mb\": {:.1}, \
         \"peak_rss_mb\": {:.1}, \"seconds\": {:.2}, \"epochs_per_sec\": {:.3}, \
         \"speedup\": {:.2}}}",
        accounts,
        source.workload().expect("generated source").blocks,
        txs,
        trace_mb,
        rss,
        seconds,
        summary.epochs as f64 / seconds.max(1e-9),
        trace_mb / rss.max(1e-9),
    );
    ExitCode::SUCCESS
}

/// Byte-compares the streamed CSV against the materialised path at the
/// given size (must be small enough to fit in memory).
fn verify(scenario: &Scenario, accounts: usize) -> Result<(), String> {
    let (workload, config) = scaled(scenario, accounts, 1);
    let source = TraceSource::StreamedGenerated(workload);
    let mut streamed: Vec<u8> = Vec::new();
    runner::run_streamed(&config, &source, &mut streamed).map_err(|e| e.to_string())?;
    let trace = source.materialize().map_err(|e| e.to_string())?;
    let mut resident: Vec<u8> = Vec::new();
    runner::run_streaming(&config, &trace, &mut resident).map_err(|e| e.to_string())?;
    if streamed != resident {
        return Err(format!(
            "streamed CSV diverged from materialised path at {accounts} accounts"
        ));
    }
    println!(
        "bench_scale: streamed == materialised at {accounts} accounts ({} bytes)",
        streamed.len()
    );
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scenario_path = "scenarios/huge.scenario".to_string();
    let mut accounts: Vec<usize> = vec![100_000, 300_000, 1_000_000];
    let mut out = "BENCH_scale.json".to_string();
    let mut max_rss_mb: Option<f64> = None;
    let mut one: Option<usize> = None;
    let mut depth: u64 = 4;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = || it.next().cloned().unwrap_or_else(|| usage());
        match arg.as_str() {
            "--scenario" => scenario_path = value(),
            "--accounts" => {
                accounts = value()
                    .split(',')
                    .map(|n| n.trim().parse().unwrap_or_else(|_| usage()))
                    .collect();
            }
            "--depth" => depth = value().parse().unwrap_or_else(|_| usage()),
            "--out" => out = value(),
            "--max-rss-mb" => max_rss_mb = value().parse().ok(),
            "--one" => one = value().parse().ok(),
            _ => usage(),
        }
    }
    if accounts.is_empty() {
        usage();
    }
    if let Some(n) = one {
        return run_one(&scenario_path, n, depth);
    }

    let scenario =
        Scenario::load(&scenario_path).unwrap_or_else(|e| fail(format!("{scenario_path}: {e}")));
    accounts.sort_unstable();
    if let Err(e) = verify(&scenario, accounts[0]) {
        eprintln!("bench_scale: FAIL: {e}");
        return ExitCode::FAILURE;
    }

    // One (accounts, depth) measurement per child process: every size
    // at natural depth, plus — when --depth > 1 — the middle size with
    // its block count multiplied, the entry whose trace grows while the
    // streamed pipeline's memory must not.
    let mut plan: Vec<(usize, u64)> = accounts.iter().map(|&n| (n, 1)).collect();
    if depth > 1 {
        plan.push((accounts[accounts.len() / 2], depth));
    }

    let exe = std::env::current_exe().unwrap_or_else(|e| fail(format!("current_exe: {e}")));
    let mut entries = Vec::new();
    let mut over_ceiling = false;
    for &(n, d) in &plan {
        let output = std::process::Command::new(&exe)
            .args([
                "--scenario",
                &scenario_path,
                "--one",
                &n.to_string(),
                "--depth",
                &d.to_string(),
            ])
            .output()
            .unwrap_or_else(|e| fail(format!("spawning child: {e}")));
        if !output.status.success() {
            eprintln!("{}", String::from_utf8_lossy(&output.stderr));
            fail(format!("child for {n} accounts failed: {}", output.status));
        }
        let entry = String::from_utf8_lossy(&output.stdout).trim().to_string();
        let rss = entry
            .split("\"peak_rss_mb\":")
            .nth(1)
            .and_then(|r| r.trim().split(',').next())
            .and_then(|v| v.trim().parse::<f64>().ok())
            .unwrap_or_else(|| fail(format!("child printed no peak_rss_mb: {entry}")));
        println!("bench_scale: {entry}");
        if let Some(ceiling) = max_rss_mb {
            if rss > ceiling {
                eprintln!(
                    "bench_scale: FAIL: {n} accounts peaked at {rss:.1} MB \
                     (ceiling {ceiling} MB)"
                );
                over_ceiling = true;
            }
        }
        entries.push(entry);
    }

    let mut json = String::new();
    json.push_str("{\n  \"bench\": \"scale_streaming\",\n");
    json.push_str("  \"unit\": \"MB and epochs/sec; speedup = trace_mb / peak_rss_mb\",\n");
    json.push_str("  \"cpus\": 0,\n");
    json.push_str(&format!("  \"scenario\": \"{scenario_path}\",\n"));
    json.push_str("  \"results\": [\n");
    for (i, entry) in entries.iter().enumerate() {
        let comma = if i + 1 < entries.len() { "," } else { "" };
        json.push_str(&format!("    {entry}{comma}\n"));
    }
    json.push_str("  ]\n}\n");
    let mut file = std::fs::File::create(&out).unwrap_or_else(|e| fail(format!("{out}: {e}")));
    file.write_all(json.as_bytes())
        .unwrap_or_else(|e| fail(format!("{out}: {e}")));
    println!("bench_scale: wrote {out}");
    if over_ceiling {
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
