//! CI gate for the telemetry JSONL event stream: every line of every
//! given file must parse as a standalone JSON object, and the run must
//! have produced at least one event — an empty file would mean the
//! observer silently never engaged.
//!
//! ```text
//! telemetry_check <file.jsonl>... [--require <kind>]...
//! ```
//!
//! `--require span` (repeatable) additionally fails unless at least one
//! event with `"kind": "span"` appears across the files — how the
//! telemetry-smoke job asserts the epoch pipeline actually emitted its
//! phase spans, per-epoch records, and snapshot lines, not just *some*
//! bytes. Dependency-free like `bench_check`: the JSON parser below is
//! the few dozen lines the check needs, not a crate.

use std::collections::BTreeMap;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("telemetry_check: {message}");
            ExitCode::FAILURE
        }
    }
}

fn run(args: &[String]) -> Result<(), String> {
    let mut paths = Vec::new();
    let mut required: Vec<String> = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--require" => required.push(it.next().ok_or("--require needs an event kind")?.clone()),
            _ => paths.push(arg.clone()),
        }
    }
    if paths.is_empty() {
        return Err("usage: telemetry_check <file.jsonl>... [--require <kind>]...".into());
    }

    let mut kinds: BTreeMap<String, usize> = BTreeMap::new();
    let mut total = 0usize;
    for path in &paths {
        let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
        for (index, line) in text.lines().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            let value = parse_json(line)
                .map_err(|e| format!("{path}:{}: not valid JSON: {e}\n  {line}", index + 1))?;
            let Json::Object(fields) = value else {
                return Err(format!(
                    "{path}:{}: line is not a JSON object\n  {line}",
                    index + 1
                ));
            };
            total += 1;
            let kind = match fields.iter().find(|(k, _)| k == "kind") {
                Some((_, Json::String(kind))) => kind.clone(),
                _ => "<no kind>".to_string(),
            };
            *kinds.entry(kind).or_insert(0) += 1;
        }
    }
    if total == 0 {
        return Err(format!(
            "no events in {} — the telemetry observer never engaged",
            paths.join(", ")
        ));
    }
    for (kind, count) in &kinds {
        println!("telemetry_check: {count:>6} {kind}");
    }
    println!(
        "telemetry_check: {total} events OK across {} file(s)",
        paths.len()
    );
    for kind in &required {
        if !kinds.contains_key(kind) {
            return Err(format!(
                "no {kind:?} events found (kinds present: {:?})",
                kinds.keys().collect::<Vec<_>>()
            ));
        }
    }
    Ok(())
}

/// The minimal JSON value tree the check needs — objects keep insertion
/// order as (key, value) pairs; numbers stay unparsed beyond syntax.
enum Json {
    Null,
    Bool(#[allow(dead_code)] bool),
    Number,
    String(String),
    Array(#[allow(dead_code)] Vec<Json>),
    Object(Vec<(String, Json)>),
}

fn parse_json(text: &str) -> Result<Json, String> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing content at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\r' | b'\n') {
        *pos += 1;
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => Ok(Json::String(parse_string(bytes, pos)?)),
        Some(b't') => parse_literal(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_literal(bytes, pos, "null", Json::Null),
        Some(c) if c.is_ascii_digit() || *c == b'-' => parse_number(bytes, pos),
        Some(c) => Err(format!("unexpected byte {:?} at {}", *c as char, *pos)),
        None => Err("unexpected end of input".into()),
    }
}

fn parse_literal(bytes: &[u8], pos: &mut usize, word: &str, value: Json) -> Result<Json, String> {
    if bytes[*pos..].starts_with(word.as_bytes()) {
        *pos += word.len();
        Ok(value)
    } else {
        Err(format!("malformed literal at byte {}", *pos))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).expect("ascii digits");
    text.parse::<f64>()
        .map(|_| Json::Number)
        .map_err(|_| format!("malformed number {text:?} at byte {start}"))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    debug_assert_eq!(bytes[*pos], b'"');
    *pos += 1;
    let mut out = String::new();
    while let Some(&c) = bytes.get(*pos) {
        match c {
            b'"' => {
                *pos += 1;
                return Ok(out);
            }
            b'\\' => {
                *pos += 1;
                let escaped = bytes.get(*pos).ok_or("unterminated escape".to_string())?;
                match escaped {
                    b'"' | b'\\' | b'/' => out.push(*escaped as char),
                    b'n' => out.push('\n'),
                    b't' => out.push('\t'),
                    b'r' => out.push('\r'),
                    b'b' | b'f' => out.push(' '),
                    b'u' => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or("truncated \\u escape".to_string())?;
                        let code = u32::from_str_radix(
                            std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                            16,
                        )
                        .map_err(|_| "bad \\u escape")?;
                        out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                        *pos += 4;
                    }
                    other => return Err(format!("unknown escape \\{}", *other as char)),
                }
                *pos += 1;
            }
            _ => {
                // Multi-byte UTF-8 passes through byte-by-byte; the
                // final String::from_utf8 on the source already held.
                let rest = std::str::from_utf8(&bytes[*pos..]).map_err(|_| "invalid UTF-8")?;
                let ch = rest.chars().next().expect("non-empty");
                out.push(ch);
                *pos += ch.len_utf8();
            }
        }
    }
    Err("unterminated string".into())
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    *pos += 1; // consume '['
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Array(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Array(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    *pos += 1; // consume '{'
    let mut fields = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Object(fields));
    }
    loop {
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b'"') {
            return Err(format!("expected object key at byte {}", *pos));
        }
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b':') {
            return Err(format!("expected ':' at byte {}", *pos));
        }
        *pos += 1;
        let value = parse_value(bytes, pos)?;
        fields.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Object(fields));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn telemetry_shaped_lines_parse() {
        for line in [
            r#"{"kind":"span","ts_us":12,"scope":"quick_pilot","name":"epoch.train","us":340}"#,
            r#"{"kind":"epoch","ts_us":99,"epoch":"3","cross_ratio":0.41,"txs":"16000"}"#,
            r#"{"kind":"histogram","name":"epoch.commit","min_ns":null,"buckets":[0,1,2]}"#,
            r#"{"kind":"counter","name":"core.txs_ingested","value":80000}"#,
            "{}",
        ] {
            assert!(parse_json(line).is_ok(), "{line}");
        }
    }

    #[test]
    fn malformed_lines_are_rejected() {
        for line in [
            r#"{"kind":"span""#,
            r#"{"kind":}"#,
            r#"[1,2,3"#,
            r#"{"a":1} trailing"#,
            r#"{"a":01x}"#,
            "",
        ] {
            assert!(parse_json(line).is_err(), "{line:?} should fail");
        }
    }
}
