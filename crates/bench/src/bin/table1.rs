//! Regenerates Table I: average cross-shard transaction ratios.

use mosaic_bench::scenario_from_args;
use mosaic_sim::{experiments, Scenario};

fn main() {
    let scenario = scenario_from_args(
        "Table I: cross-shard transaction ratio",
        Scenario::effectiveness,
    );
    let cells = experiments::run_scenario(&scenario);
    println!("{}", experiments::table1(&cells));
}
