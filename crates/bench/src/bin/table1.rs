//! Regenerates Table I: average cross-shard transaction ratios.

use mosaic_bench::scale_from_env;
use mosaic_sim::experiments;

fn main() {
    let scale = scale_from_env("Table I: cross-shard transaction ratio");
    let cells = experiments::effectiveness_grid(&scale);
    println!("{}", experiments::table1(&cells));
}
