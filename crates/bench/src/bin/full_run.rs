//! Streams one full-protocol run per strategy to disk.
//!
//! For every registry strategy the cell runs with within-cell
//! parallelism enabled ([`Parallelism::Auto`]) and each per-epoch
//! metric row is written to `results/<strategy>.csv` the moment it is
//! computed — no per-epoch vector is held in memory, so
//! `MOSAIC_SCALE=full` (the paper's 200-epoch protocol) runs in
//! bounded memory at hardware speed.
//!
//! ```text
//! MOSAIC_SCALE=full cargo run -p mosaic-bench --release --bin full_run
//! MOSAIC_STRATEGY=Pilot cargo run -p mosaic-bench --release --bin full_run
//! ```

use std::fs;
use std::io::BufWriter;
use std::path::Path;

use mosaic_bench::scale_from_env;
use mosaic_sim::runner::{run_streaming, ExperimentConfig};
use mosaic_sim::{Parallelism, Strategy};
use mosaic_types::SystemParams;
use mosaic_workload::generate;

fn main() {
    let scale = scale_from_env("Full-protocol streaming run (per-epoch CSV per strategy)");
    let params = SystemParams::builder()
        .shards(16)
        .eta(2.0)
        .tau(scale.tau)
        .build()
        .expect("valid default parameters");
    let only = std::env::var("MOSAIC_STRATEGY").ok();
    // Fail fast on a typo'd filter: silently matching nothing would let
    // an overnight run exit 0 with no data.
    if let Some(name) = only.as_deref() {
        if !Strategy::ALL.iter().any(|s| s.name() == name) {
            let valid: Vec<&str> = Strategy::ALL.iter().map(|s| s.name()).collect();
            eprintln!("unknown MOSAIC_STRATEGY {name:?}; valid names: {valid:?}");
            std::process::exit(2);
        }
    }

    let trace = generate(&scale.workload).into_trace();
    // Repo root, resolved from this crate's manifest dir so the output
    // lands in the gitignored /results regardless of invocation cwd.
    let results_dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../results");
    fs::create_dir_all(&results_dir).expect("create results/ directory");

    for strategy in Strategy::ALL {
        if only.as_deref().is_some_and(|s| s != strategy.name()) {
            continue;
        }
        let config = ExperimentConfig::new(params, strategy, scale.eval_epochs)
            .with_cell_parallelism(Parallelism::Auto);
        let path = results_dir.join(format!("{}.csv", strategy.name().to_lowercase()));
        let file = fs::File::create(&path).expect("create per-strategy CSV");
        let mut out = BufWriter::new(file);
        let summary = run_streaming(&config, &trace, &mut out).expect("stream epoch rows");
        println!(
            "{:<10} {} epochs -> {}: ratio {:.4}, throughput {:.2}, deviation {:.2}, \
             {} migrations, mean alloc {:.3e} s",
            strategy.name(),
            summary.epochs,
            path.display(),
            summary.aggregate.cross_ratio,
            summary.aggregate.normalized_throughput,
            summary.aggregate.workload_deviation,
            summary.total_migrations,
            summary.mean_alloc_seconds,
        );
    }
}
