//! Streams one full-protocol run per scenario cell to disk — and
//! doubles as the CI determinism gate.
//!
//! The run is described by a declarative scenario: either a checked-in
//! spec (`--scenario scenarios/quick.scenario`) or the
//! [`Scenario::full_protocol`] preset at the `MOSAIC_SCALE` scale. The
//! session materialises the trace once, runs every cell with
//! within-cell parallelism as specified, and each per-epoch metric row
//! is written to `<dir>/<cell>.csv` the moment it is computed — no
//! per-epoch vector is held in memory, so the paper's 200-epoch
//! protocol (`scenarios/full.scenario`) runs in bounded memory at
//! hardware speed.
//!
//! With `--check-determinism` no files are written: every cell runs
//! through [`Simulation::stream_cell`] at a worker matrix —
//! `cell_parallelism` 1 vs 2 vs a thread count beyond the machine's
//! cores, with the adaptive sequential cutoff disabled so the pool
//! engages at every scale — and the CSV byte streams are compared. The
//! same matrix then re-runs with a process-wide telemetry recorder
//! installed, so the gate also enforces the observability invariant:
//! instrumentation must never perturb a result byte. Any difference
//! exits non-zero; this is the end-to-end enforcement of the
//! allocators' parallel-equals-sequential contract, exercised through
//! the scenario parser and session path CI actually ships.
//!
//! ```text
//! cargo run -p mosaic-bench --release --bin full_run -- --scenario scenarios/full.scenario
//! MOSAIC_SCALE=full cargo run -p mosaic-bench --release --bin full_run
//! MOSAIC_STRATEGY=Pilot cargo run -p mosaic-bench --release --bin full_run
//! cargo run -p mosaic-bench --release --bin full_run -- \
//!     --scenario scenarios/quick.scenario --check-determinism
//! ```

use std::num::NonZeroUsize;
use std::path::{Path, PathBuf};

use mosaic_bench::{print_header, scenario_path_from_args};
use mosaic_sim::engine::RunSummary;
use mosaic_sim::scenario::CellSpec;
use mosaic_sim::{ObserverSpec, Parallelism, RunObserver, Scale, Scenario, Simulation, Strategy};
use mosaic_telemetry::Recorder;

/// Runs every cell through the session at a matrix of worker counts
/// (`cell_parallelism` 1 vs 2 vs max), both with telemetry disabled and
/// with a live recorder installed, and fails on any CSV byte
/// difference. Returns `(checked, divergent)` cell counts — a gate that
/// compared nothing must not pass.
fn check_determinism(sim: &Simulation) -> (usize, usize) {
    // The gate must exercise the pool even at scales below the adaptive
    // sequential cutoff — byte-identity is the contract at every size.
    mosaic_sim::parallel::set_par_cutoff(1);
    // Strictly more workers than the machine has cores (2x, minimum 4),
    // so the threaded code paths engage even on single-core runners AND
    // the oversubscribed-scheduling case is exercised on every runner.
    // The intermediate 2-worker level catches bugs that only show up
    // when lane boundaries move (e.g. chunk-splitting off-by-ones that
    // max-worker runs happen to mask).
    let max_workers = std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
        .saturating_mul(2)
        .max(4);
    // (workers, instrumented): the telemetry-off baseline matrix, then
    // the same worker levels with a live recorder installed. Telemetry
    // events go to `io::sink()` — the recorder still takes every hot
    // path (counters, spans, clock reads), only the bytes vanish.
    let variants = [
        (2usize, false),
        (max_workers, false),
        (1, true),
        (2, true),
        (max_workers, true),
    ];
    let mut checked = 0usize;
    let mut divergent = 0usize;
    for cell in sim.cells() {
        checked += 1;
        let name = format!("{} / {}", cell.label, cell.config.strategy.name());
        let stream_at = |parallelism: Parallelism, instrumented: bool| {
            let recorder = if instrumented {
                Recorder::with_sink(Box::new(std::io::sink()))
            } else {
                Recorder::disabled()
            };
            mosaic_telemetry::install_global(recorder);
            mosaic_sim::parallel::thread_pool_reset();
            let mut variant = cell.clone();
            variant.config.cell_parallelism = parallelism;
            let mut bytes: Vec<u8> = Vec::new();
            sim.stream_cell(&variant, &mut bytes)
                .expect("vec sink cannot fail");
            bytes
        };
        let sequential = stream_at(Parallelism::Threads(1), false);
        let mut cell_ok = true;
        for (workers, instrumented) in variants {
            let candidate = stream_at(Parallelism::Threads(workers), instrumented);
            if sequential != candidate {
                cell_ok = false;
                divergent += 1;
                let first_diff = sequential
                    .iter()
                    .zip(&candidate)
                    .position(|(a, b)| a != b)
                    .unwrap_or_else(|| sequential.len().min(candidate.len()));
                eprintln!(
                    "{name:<20} DIVERGED at {workers} workers (telemetry {}): first \
                     differing byte at offset {first_diff} ({} vs {} bytes total)",
                    if instrumented { "on" } else { "off" },
                    sequential.len(),
                    candidate.len(),
                );
                break;
            }
        }
        if cell_ok {
            println!(
                "{name:<20} OK: {} CSV bytes identical at 1 vs 2 vs {max_workers} workers, \
                 telemetry on and off",
                sequential.len(),
            );
        }
    }
    mosaic_telemetry::install_global(Recorder::disabled());
    mosaic_sim::parallel::thread_pool_reset();
    (checked, divergent)
}

/// Prints one summary line per finished cell, as cells complete.
struct PrintSummary {
    single_point: bool,
    dir: Option<PathBuf>,
}

impl RunObserver for PrintSummary {
    fn on_cell(&self, cell: &CellSpec, summary: &RunSummary) {
        let dest = self
            .dir
            .as_ref()
            .map(|d| {
                format!(
                    " -> {}",
                    d.join(format!("{}.csv", cell.file_stem(self.single_point)))
                        .display()
                )
            })
            .unwrap_or_default();
        println!(
            "{:<20} {} epochs{dest}: ratio {:.4}, throughput {:.2}, deviation {:.2}, \
             {} migrations, mean alloc {:.3e} s",
            format!("{} / {}", cell.label, cell.config.strategy.name()),
            summary.epochs,
            summary.aggregate.cross_ratio,
            summary.aggregate.normalized_throughput,
            summary.aggregate.workload_deviation,
            summary.total_migrations,
            summary.mean_alloc_seconds,
        );
    }
}

fn main() {
    let check = std::env::args().any(|a| a == "--check-determinism");
    let mut scenario = match scenario_path_from_args() {
        Some(path) => Scenario::load(&path).unwrap_or_else(|e| {
            eprintln!("failed to load scenario {path}: {e}");
            std::process::exit(2);
        }),
        None => {
            // Preset fallback: repo root resolved from this crate's
            // manifest dir so the output lands in the gitignored
            // /results regardless of invocation cwd.
            let results = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../results");
            Scenario::full_protocol(&Scale::from_env())
                .with_observers([ObserverSpec::StreamCsv(results)])
        }
    };
    // Fail fast on a typo'd filter: silently matching nothing would let
    // an overnight run exit 0 with no data.
    if let Ok(name) = std::env::var("MOSAIC_STRATEGY") {
        let strategy: Strategy = name.parse().unwrap_or_else(|e| {
            eprintln!("{e}");
            std::process::exit(2);
        });
        scenario.strategies.retain(|s| *s == strategy);
        if scenario.strategies.is_empty() {
            eprintln!("MOSAIC_STRATEGY {name:?} is not in the scenario's strategy set");
            std::process::exit(2);
        }
    }
    print_header(
        if check {
            "Determinism gate (cell_parallelism 1 vs 2 vs max, telemetry on/off, byte-compared CSVs)"
        } else {
            "Full-protocol streaming run (per-epoch CSV per cell)"
        },
        &scenario,
    );

    if check {
        let sim = Simulation::from_scenario(scenario).unwrap_or_else(|e| {
            eprintln!("failed to materialise scenario: {e}");
            std::process::exit(2);
        });
        let (checked, divergent) = check_determinism(&sim);
        if divergent > 0 {
            eprintln!("determinism check FAILED for {divergent} cells");
            std::process::exit(1);
        }
        // Belt and braces: validation guarantees at least one strategy,
        // but a gate that compared nothing must never report success.
        if checked == 0 {
            eprintln!("determinism check matched no cells");
            std::process::exit(1);
        }
        println!("determinism check passed for all {checked} cells");
        return;
    }

    let printer = PrintSummary {
        single_point: scenario.is_single_point(),
        dir: scenario.observers.iter().find_map(|o| match o {
            ObserverSpec::StreamCsv(dir) => Some(dir.clone()),
            ObserverSpec::Collect | ObserverSpec::Telemetry(_) => None,
        }),
    };
    let sim = Simulation::from_scenario(scenario)
        .unwrap_or_else(|e| {
            eprintln!("failed to materialise scenario: {e}");
            std::process::exit(2);
        })
        .with_observer(Box::new(printer));
    if let Err(e) = sim.run() {
        eprintln!("scenario run failed: {e}");
        std::process::exit(1);
    }
}
