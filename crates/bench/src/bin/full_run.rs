//! Streams one full-protocol run per strategy to disk — and doubles as
//! the CI determinism gate.
//!
//! For every registry strategy the cell runs with within-cell
//! parallelism enabled ([`Parallelism::Auto`]) and each per-epoch
//! metric row is written to `results/<strategy>.csv` the moment it is
//! computed — no per-epoch vector is held in memory, so
//! `MOSAIC_SCALE=full` (the paper's 200-epoch protocol) runs in
//! bounded memory at hardware speed.
//!
//! With `--check-determinism` no files are written: every strategy's
//! cell runs **twice** — `cell_parallelism` 1 versus a thread count
//! beyond the machine's cores — and the two CSV byte streams are
//! compared. Any difference exits non-zero; this is the end-to-end
//! enforcement of the allocators' parallel-equals-sequential contract.
//!
//! ```text
//! MOSAIC_SCALE=full cargo run -p mosaic-bench --release --bin full_run
//! MOSAIC_STRATEGY=Pilot cargo run -p mosaic-bench --release --bin full_run
//! MOSAIC_SCALE=quick cargo run -p mosaic-bench --release --bin full_run -- --check-determinism
//! ```

use std::fs;
use std::io::BufWriter;
use std::num::NonZeroUsize;
use std::path::Path;

use mosaic_bench::scale_from_env;
use mosaic_sim::runner::{run_streaming, ExperimentConfig};
use mosaic_sim::{Parallelism, Strategy};
use mosaic_types::SystemParams;
use mosaic_workload::{generate, TransactionTrace};

/// Runs every (filtered) strategy with `cell_parallelism` 1 vs max and
/// fails on any CSV byte difference. Returns `(checked, divergent)`
/// strategy counts — a gate that compared nothing must not pass.
fn check_determinism(
    params: SystemParams,
    trace: &TransactionTrace,
    eval_epochs: usize,
    only: Option<&str>,
) -> (usize, usize) {
    // Strictly more workers than the machine has cores (2x,
    // minimum 4), so the threaded code paths engage even on
    // single-core runners AND the oversubscribed-scheduling case is
    // exercised on every runner.
    let max_workers = std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
        .saturating_mul(2)
        .max(4);
    let mut checked = 0usize;
    let mut divergent = 0usize;
    for strategy in Strategy::ALL {
        if only.is_some_and(|s| s != strategy.name()) {
            continue;
        }
        checked += 1;
        let config = ExperimentConfig::new(params, strategy, eval_epochs);
        let mut sequential: Vec<u8> = Vec::new();
        run_streaming(
            &config.with_cell_parallelism(Parallelism::Threads(1)),
            trace,
            &mut sequential,
        )
        .expect("vec sink cannot fail");
        let mut parallel: Vec<u8> = Vec::new();
        run_streaming(
            &config.with_cell_parallelism(Parallelism::Threads(max_workers)),
            trace,
            &mut parallel,
        )
        .expect("vec sink cannot fail");
        if sequential == parallel {
            println!(
                "{:<10} OK: {} CSV bytes identical at 1 vs {} workers",
                strategy.name(),
                sequential.len(),
                max_workers,
            );
        } else {
            divergent += 1;
            let first_diff = sequential
                .iter()
                .zip(&parallel)
                .position(|(a, b)| a != b)
                .unwrap_or_else(|| sequential.len().min(parallel.len()));
            eprintln!(
                "{:<10} DIVERGED: first differing byte at offset {first_diff} \
                 ({} vs {} bytes total)",
                strategy.name(),
                sequential.len(),
                parallel.len(),
            );
        }
    }
    (checked, divergent)
}

fn main() {
    let check = std::env::args().any(|a| a == "--check-determinism");
    let scale = scale_from_env(if check {
        "Determinism gate (cell_parallelism 1 vs max, byte-compared CSVs)"
    } else {
        "Full-protocol streaming run (per-epoch CSV per strategy)"
    });
    let params = SystemParams::builder()
        .shards(16)
        .eta(2.0)
        .tau(scale.tau)
        .build()
        .expect("valid default parameters");
    let only = std::env::var("MOSAIC_STRATEGY").ok();
    // Fail fast on a typo'd filter: silently matching nothing would let
    // an overnight run exit 0 with no data.
    if let Some(name) = only.as_deref() {
        if !Strategy::ALL.iter().any(|s| s.name() == name) {
            let valid: Vec<&str> = Strategy::ALL.iter().map(|s| s.name()).collect();
            eprintln!("unknown MOSAIC_STRATEGY {name:?}; valid names: {valid:?}");
            std::process::exit(2);
        }
    }

    let trace = generate(&scale.workload).into_trace();

    if check {
        let (checked, divergent) =
            check_determinism(params, &trace, scale.eval_epochs, only.as_deref());
        if divergent > 0 {
            eprintln!("determinism check FAILED for {divergent} strategies");
            std::process::exit(1);
        }
        // Belt and braces: the filter is validated above, but a gate
        // that compared nothing must never report success.
        if checked == 0 {
            eprintln!("determinism check matched no strategies");
            std::process::exit(1);
        }
        println!("determinism check passed for all {checked} strategies");
        return;
    }
    // Repo root, resolved from this crate's manifest dir so the output
    // lands in the gitignored /results regardless of invocation cwd.
    let results_dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../results");
    fs::create_dir_all(&results_dir).expect("create results/ directory");

    for strategy in Strategy::ALL {
        if only.as_deref().is_some_and(|s| s != strategy.name()) {
            continue;
        }
        let config = ExperimentConfig::new(params, strategy, scale.eval_epochs)
            .with_cell_parallelism(Parallelism::Auto);
        let path = results_dir.join(format!("{}.csv", strategy.name().to_lowercase()));
        let file = fs::File::create(&path).expect("create per-strategy CSV");
        let mut out = BufWriter::new(file);
        let summary = run_streaming(&config, &trace, &mut out).expect("stream epoch rows");
        println!(
            "{:<10} {} epochs -> {}: ratio {:.4}, throughput {:.2}, deviation {:.2}, \
             {} migrations, mean alloc {:.3e} s",
            strategy.name(),
            summary.epochs,
            path.display(),
            summary.aggregate.cross_ratio,
            summary.aggregate.normalized_throughput,
            summary.aggregate.workload_deviation,
            summary.total_migrations,
            summary.mean_alloc_seconds,
        );
    }
}
