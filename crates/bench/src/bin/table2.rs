//! Regenerates Table II: average throughput improvement Λ/λ.

use mosaic_bench::scenario_from_args;
use mosaic_sim::{experiments, Scenario};

fn main() {
    let scenario = scenario_from_args("Table II: normalized throughput", Scenario::effectiveness);
    let cells = experiments::run_scenario(&scenario);
    println!("{}", experiments::table2(&cells));
}
