//! Regenerates Table II: average throughput improvement Λ/λ.

use mosaic_bench::scale_from_env;
use mosaic_sim::experiments;

fn main() {
    let scale = scale_from_env("Table II: normalized throughput");
    let cells = experiments::effectiveness_grid(&scale);
    println!("{}", experiments::table2(&cells));
}
