//! CI gate over the recorded `BENCH_*.json` speedups — no dependencies,
//! no JSON crate, just the two shapes our benches write.
//!
//! ```text
//! bench_check <baseline.json> <current.json> [--min-ratio 0.9] [--min-final 1.5]
//!             [--wire line|binary] [--summary <file.md>]
//! ```
//!
//! Checks, in order:
//!
//! 1. **Regression ratio** — every baseline entry's speedup must be
//!    matched positionally by a current entry with
//!    `current / baseline >= min-ratio` (default 0.9×). Both files are
//!    written by the same bench code, so positional matching is exact;
//!    the labels are printed for every row.
//! 2. **Absolute thread speedup** — when the *current* file records a
//!    multi-threaded allocator run on real cores (`"workers"` present
//!    and `"cpus" > 2`), the largest-size entry of every allocator must
//!    reach `min-final` (default 1.5×). On a runner with ≤ 2 cpus the
//!    gate is skipped with a note — a healthy thread speedup cannot
//!    exist there, and pretending otherwise would just train people to
//!    ignore the gate.
//!
//! `--wire <token>` restricts both files to the `node_replay` entries
//! recorded for that wire codec before any gate runs — CI checks the
//! line and binary codecs at different floors, but the committed
//! baseline holds both in one file.
//!
//! `--summary <file.md>` additionally renders the seq-vs-par table as
//! GitHub-flavoured markdown (CI appends it to `$GITHUB_STEP_SUMMARY`).
//!
//! Exit status: 0 pass, 1 gate failed, 2 usage/parse error.

use std::process::ExitCode;

/// One `{...}` entry of a bench file's `"results"` array.
#[derive(Debug, Clone, PartialEq)]
struct Entry {
    /// `"allocator"` value when present (allocators_parallel shape).
    allocator: Option<String>,
    /// `"nodes"`, `"epochs"` or `"accounts"` — whatever sizes the entry.
    size: f64,
    /// Sequential-side milliseconds, when the shape records them.
    seq_ms: Option<f64>,
    /// Parallel-side milliseconds, when the shape records them.
    par_ms: Option<f64>,
    /// `"wire"` codec token when present (node_replay shape).
    wire: Option<String>,
    /// `"sessions"` count when present (node_replay shape).
    sessions: Option<f64>,
    speedup: f64,
}

/// The parsed skeleton of one bench JSON file.
#[derive(Debug, Clone, PartialEq)]
struct BenchFile {
    bench: String,
    workers: Option<f64>,
    cpus: Option<f64>,
    entries: Vec<Entry>,
}

/// Extracts the number following `"key":` in `text`, if any.
fn find_number(text: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\":");
    let at = text.find(&needle)? + needle.len();
    let rest = text[at..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == '+'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Extracts the string following `"key":` in `text`, if any.
fn find_string(text: &str, key: &str) -> Option<String> {
    let needle = format!("\"{key}\":");
    let at = text.find(&needle)? + needle.len();
    let rest = text[at..].trim_start().strip_prefix('"')?;
    Some(rest[..rest.find('"')?].to_string())
}

fn parse(content: &str) -> Result<BenchFile, String> {
    let bench = find_string(content, "bench").ok_or("missing \"bench\" field")?;
    let results_at = content
        .find("\"results\"")
        .ok_or("missing \"results\" array")?;
    let body = &content[results_at..];
    let mut entries = Vec::new();
    // Entries are flat objects: split on '{' after the array opens.
    for chunk in body.split('{').skip(1) {
        let entry = &chunk[..chunk.find('}').ok_or("unterminated results entry")?];
        let speedup = find_number(entry, "speedup")
            .ok_or_else(|| format!("entry without a speedup: {entry:?}"))?;
        let size = find_number(entry, "nodes")
            .or_else(|| find_number(entry, "epochs"))
            .or_else(|| find_number(entry, "accounts"))
            .unwrap_or(0.0);
        entries.push(Entry {
            allocator: find_string(entry, "allocator"),
            size,
            seq_ms: find_number(entry, "seq_ms").or_else(|| find_number(entry, "full_rebuild_ms")),
            par_ms: find_number(entry, "par_ms").or_else(|| find_number(entry, "merge_delta_ms")),
            wire: find_string(entry, "wire"),
            sessions: find_number(entry, "sessions"),
            speedup,
        });
    }
    if entries.is_empty() {
        return Err("no results entries".into());
    }
    Ok(BenchFile {
        bench,
        workers: find_number(content, "workers"),
        cpus: find_number(content, "cpus"),
        entries,
    })
}

fn label(e: &Entry) -> String {
    let base = match &e.allocator {
        Some(a) => format!("{a}/{}", e.size),
        None => format!("@{}", e.size),
    };
    match (&e.wire, e.sessions) {
        (Some(wire), Some(sessions)) => format!("{base}[{wire}×{sessions}]"),
        (Some(wire), None) => format!("{base}[{wire}]"),
        _ => base,
    }
}

/// Runs both gates; returns human-readable failures (empty = pass).
fn check(baseline: &BenchFile, current: &BenchFile, min_ratio: f64, min_final: f64) -> Vec<String> {
    let mut failures = Vec::new();
    if baseline.bench != current.bench {
        failures.push(format!(
            "bench mismatch: baseline {:?} vs current {:?}",
            baseline.bench, current.bench
        ));
        return failures;
    }
    if baseline.entries.len() != current.entries.len() {
        failures.push(format!(
            "entry count changed: baseline {} vs current {} — re-commit the baseline",
            baseline.entries.len(),
            current.entries.len()
        ));
        return failures;
    }

    // Thread speedups only compare like-for-like: a baseline measured
    // on a different core count would make the ratio gate vacuous (1
    // baseline core vs 4 CI cores) or spuriously flaky (the reverse).
    // Files without a cpus field (algorithmic speedups, e.g.
    // graph_delta) compare across machines fine.
    let comparable = baseline.cpus == current.cpus;
    if !comparable {
        println!(
            "{}: baseline cpus {:?} != current cpus {:?} — ratio gate skipped \
             (re-commit a baseline from this runner class to arm it)",
            current.bench, baseline.cpus, current.cpus
        );
    }
    for (base, cur) in baseline.entries.iter().zip(&current.entries) {
        let ratio = cur.speedup / base.speedup.max(1e-9);
        let verdict = if !comparable {
            "(not comparable)"
        } else if ratio >= min_ratio {
            "ok"
        } else {
            "REGRESSED"
        };
        println!(
            "{}: {} speedup {:.2}x vs baseline {:.2}x (ratio {:.2}) {}",
            current.bench,
            label(cur),
            cur.speedup,
            base.speedup,
            ratio,
            verdict
        );
        if comparable && ratio < min_ratio {
            failures.push(format!(
                "{} speedup regressed to {:.2}x of baseline (floor {min_ratio}x)",
                label(cur),
                ratio
            ));
        }
    }

    // Absolute thread-speedup gate (allocator benches on real cores —
    // at 2 cpus the commit walk's sequential share caps the speedup too
    // low for a meaningful floor, so the gate arms above that).
    let multicore = current.cpus.is_some_and(|c| c > 2.0);
    if current.workers.is_some() && current.entries.iter().any(|e| e.allocator.is_some()) {
        if multicore {
            let mut allocators: Vec<&str> = current
                .entries
                .iter()
                .filter_map(|e| e.allocator.as_deref())
                .collect();
            // The results interleave allocators per size step, so sort
            // before dedup (dedup alone only drops consecutive runs).
            allocators.sort_unstable();
            allocators.dedup();
            for allocator in allocators {
                let largest = current
                    .entries
                    .iter()
                    .filter(|e| e.allocator.as_deref() == Some(allocator))
                    .max_by(|a, b| a.size.total_cmp(&b.size))
                    .expect("allocator has entries");
                println!(
                    "{}: {} largest-size speedup {:.2}x (floor {min_final}x)",
                    current.bench,
                    label(largest),
                    largest.speedup
                );
                if largest.speedup < min_final {
                    failures.push(format!(
                        "{} largest-size speedup {:.2}x below the {min_final}x floor",
                        label(largest),
                        largest.speedup
                    ));
                }
            }
        } else {
            println!(
                "{}: run recorded on ≤ 2 cpus (cpus = {:?}) — absolute speedup gate skipped",
                current.bench, current.cpus
            );
        }
    }
    failures
}

/// Renders the seq-vs-par table as GitHub-flavoured markdown — CI
/// appends this to `$GITHUB_STEP_SUMMARY` so the speedups are readable
/// without digging through the job log.
fn summary_markdown(baseline: &BenchFile, current: &BenchFile) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    let _ = writeln!(out, "### `{}` — sequential vs parallel", current.bench);
    if let (Some(w), Some(c)) = (current.workers, current.cpus) {
        let _ = writeln!(out, "\n{w} workers on {c} cpus");
    }
    let _ = writeln!(out);
    let _ = writeln!(
        out,
        "| entry | seq ms | par ms | speedup | baseline | ratio |"
    );
    let _ = writeln!(out, "|---|---:|---:|---:|---:|---:|");
    let fmt_ms = |v: Option<f64>| v.map_or_else(|| "—".to_string(), |v| format!("{v:.1}"));
    for (base, cur) in baseline.entries.iter().zip(&current.entries) {
        let _ = writeln!(
            out,
            "| {} | {} | {} | {:.2}× | {:.2}× | {:.2} |",
            label(cur),
            fmt_ms(cur.seq_ms),
            fmt_ms(cur.par_ms),
            cur.speedup,
            base.speedup,
            cur.speedup / base.speedup.max(1e-9),
        );
    }
    out
}

/// Restricts a parsed file to the entries recorded for one wire codec.
fn filter_wire(file: &mut BenchFile, wire: &str, path: &str) -> Result<(), String> {
    file.entries.retain(|e| e.wire.as_deref() == Some(wire));
    if file.entries.is_empty() {
        return Err(format!("{path}: no entries with \"wire\": \"{wire}\""));
    }
    Ok(())
}

fn run(args: &[String]) -> Result<Vec<String>, String> {
    let mut paths = Vec::new();
    let mut min_ratio = 0.9f64;
    let mut min_final = 1.5f64;
    let mut summary_path: Option<String> = None;
    let mut wire_filter: Option<String> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--min-ratio" => {
                min_ratio = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or("--min-ratio needs a number")?;
            }
            "--min-final" => {
                min_final = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or("--min-final needs a number")?;
            }
            "--wire" => {
                wire_filter = Some(it.next().ok_or("--wire needs a codec token")?.clone());
            }
            "--summary" => {
                summary_path = Some(it.next().ok_or("--summary needs a file path")?.clone());
            }
            _ => paths.push(arg.clone()),
        }
    }
    let [baseline_path, current_path] = paths.as_slice() else {
        return Err("usage: bench_check <baseline.json> <current.json> \
                    [--min-ratio 0.9] [--min-final 1.5] [--wire line|binary] \
                    [--summary <file.md>]"
            .into());
    };
    let read = |p: &String| std::fs::read_to_string(p).map_err(|e| format!("{p}: {e}"));
    let mut baseline = parse(&read(baseline_path)?).map_err(|e| format!("{baseline_path}: {e}"))?;
    let mut current = parse(&read(current_path)?).map_err(|e| format!("{current_path}: {e}"))?;
    if let Some(wire) = &wire_filter {
        filter_wire(&mut baseline, wire, baseline_path)?;
        filter_wire(&mut current, wire, current_path)?;
    }
    if let Some(path) = summary_path {
        std::fs::write(&path, summary_markdown(&baseline, &current))
            .map_err(|e| format!("{path}: {e}"))?;
    }
    Ok(check(&baseline, &current, min_ratio, min_final))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(failures) if failures.is_empty() => {
            println!("bench_check: all gates passed");
            ExitCode::SUCCESS
        }
        Ok(failures) => {
            for f in &failures {
                eprintln!("bench_check: FAIL: {f}");
            }
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("bench_check: {e}");
            ExitCode::from(2)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const ALLOC: &str = r#"{
  "bench": "allocators_parallel",
  "unit": "ms",
  "workers": 4,
  "cpus": 4,
  "shards": 16,
  "results": [
    {"allocator": "metis", "nodes": 2000, "edges": 9000, "seq_ms": 10.0, "par_ms": 6.0, "speedup": 1.67},
    {"allocator": "metis", "nodes": 24000, "edges": 90000, "seq_ms": 200.0, "par_ms": 80.0, "speedup": 2.50},
    {"allocator": "g_txallo", "nodes": 24000, "edges": 90000, "seq_ms": 300.0, "par_ms": 120.0, "speedup": 2.50}
  ]
}"#;

    const GRAPH: &str = r#"{
  "bench": "graph_delta",
  "unit": "ms",
  "trace": {"blocks": 2000, "txs_per_block": 8},
  "results": [
    {"epochs": 4, "txs": 16000, "full_rebuild_ms": 5.0, "merge_delta_ms": 4.0, "speedup": 1.24},
    {"epochs": 64, "txs": 16000, "full_rebuild_ms": 37.9, "merge_delta_ms": 8.0, "speedup": 4.72}
  ]
}"#;

    const SCALE: &str = r#"{
  "bench": "scale_streaming",
  "unit": "MB and epochs/sec; speedup = trace_mb / peak_rss_mb",
  "cpus": 0,
  "scenario": "scenarios/huge.scenario",
  "results": [
    {"accounts": 100000, "blocks": 500, "txs": 400000, "trace_mb": 15.3, "peak_rss_mb": 20.6, "seconds": 0.51, "epochs_per_sec": 9.871, "speedup": 0.74},
    {"accounts": 1000000, "blocks": 5000, "txs": 4000000, "trace_mb": 152.6, "peak_rss_mb": 198.5, "seconds": 10.51, "epochs_per_sec": 0.476, "speedup": 0.77}
  ]
}"#;

    const NODE: &str = r#"{
  "bench": "node_replay",
  "unit": "tx/s over TCP replay; speedup = node_tx_s / offline_tx_s",
  "cpus": 0,
  "scenario": "scenarios/quick.scenario",
  "results": [
    {"accounts": 800, "wire": "line", "sessions": 1, "txs": 80000, "node_tx_s": 365715, "offline_tx_s": 1447989, "speedup": 0.253},
    {"accounts": 800, "wire": "binary", "sessions": 1, "txs": 80000, "node_tx_s": 900000, "offline_tx_s": 1447989, "speedup": 0.622}
  ]
}"#;

    #[test]
    fn node_shape_parses_wire_and_sessions() {
        let f = parse(NODE).unwrap();
        assert_eq!(f.bench, "node_replay");
        assert_eq!(f.entries.len(), 2);
        assert_eq!(f.entries[0].wire.as_deref(), Some("line"));
        assert_eq!(f.entries[1].wire.as_deref(), Some("binary"));
        assert_eq!(f.entries[0].sessions, Some(1.0));
        assert_eq!(label(&f.entries[1]), "@800[binary×1]");
        assert!(check(&f, &f, 0.9, 2.0).is_empty());
    }

    #[test]
    fn wire_filter_selects_matching_entries_and_rejects_unknown_codecs() {
        let mut f = parse(NODE).unwrap();
        filter_wire(&mut f, "binary", "NODE").unwrap();
        assert_eq!(f.entries.len(), 1);
        assert_eq!(f.entries[0].speedup, 0.622);
        // A single-codec current file compares against the same slice of
        // the two-codec baseline without tripping the entry-count gate.
        let mut baseline = parse(NODE).unwrap();
        filter_wire(&mut baseline, "binary", "NODE").unwrap();
        assert!(check(&baseline, &f, 0.9, 2.0).is_empty());

        let err = filter_wire(&mut parse(NODE).unwrap(), "carrier-pigeon", "NODE").unwrap_err();
        assert!(err.contains("carrier-pigeon"), "{err}");
    }

    #[test]
    fn scale_shape_sizes_by_accounts_and_arms_the_ratio_gate() {
        let f = parse(SCALE).unwrap();
        assert_eq!(f.bench, "scale_streaming");
        // cpus is pinned to 0 by bench_scale (the memory ratio is
        // machine-independent), so baselines from any box compare.
        assert_eq!(f.cpus, Some(0.0));
        assert_eq!(f.entries[1].size, 1_000_000.0);
        assert!(check(&f, &f, 0.9, 2.0).is_empty());
        // A shrinking trace/RSS ratio is a regression like any other.
        let mut cur = f.clone();
        cur.entries[1].speedup = 0.77 * 0.8;
        let failures = check(&f, &cur, 0.9, 2.0);
        assert_eq!(failures.len(), 1);
        assert!(failures[0].contains("@1000000"), "{failures:?}");
    }

    #[test]
    fn parses_both_shapes() {
        let alloc = parse(ALLOC).unwrap();
        assert_eq!(alloc.bench, "allocators_parallel");
        assert_eq!(alloc.cpus, Some(4.0));
        assert_eq!(alloc.entries.len(), 3);
        assert_eq!(alloc.entries[1].allocator.as_deref(), Some("metis"));
        assert_eq!(alloc.entries[1].size, 24000.0);
        assert_eq!(alloc.entries[1].speedup, 2.5);

        let graph = parse(GRAPH).unwrap();
        assert_eq!(graph.bench, "graph_delta");
        assert_eq!(graph.workers, None);
        assert_eq!(graph.entries[1].size, 64.0);
        assert_eq!(graph.entries[1].speedup, 4.72);
    }

    #[test]
    fn identical_files_pass() {
        let f = parse(ALLOC).unwrap();
        assert!(check(&f, &f, 0.9, 2.0).is_empty());
        let g = parse(GRAPH).unwrap();
        assert!(check(&g, &g, 0.9, 2.0).is_empty());
    }

    #[test]
    fn regression_below_ratio_fails() {
        let base = parse(GRAPH).unwrap();
        let mut cur = base.clone();
        cur.entries[1].speedup = 4.72 * 0.8; // 0.8 < 0.9 floor
        let failures = check(&base, &cur, 0.9, 2.0);
        assert_eq!(failures.len(), 1);
        assert!(failures[0].contains("regressed"), "{failures:?}");
    }

    #[test]
    fn absolute_gate_fires_once_per_allocator_on_interleaved_entries() {
        // The real bench file interleaves allocators per size step:
        // [metis, g_txallo, metis, g_txallo, ...]. The gate must still
        // evaluate each allocator exactly once (plain dedup would not).
        let interleaved = r#"{
  "bench": "allocators_parallel", "workers": 4, "cpus": 4,
  "results": [
    {"allocator": "metis", "nodes": 2000, "speedup": 1.5},
    {"allocator": "g_txallo", "nodes": 2000, "speedup": 1.5},
    {"allocator": "metis", "nodes": 24000, "speedup": 1.5},
    {"allocator": "g_txallo", "nodes": 24000, "speedup": 1.5}
  ]
}"#;
        let f = parse(interleaved).unwrap();
        let failures = check(&f, &f, 0.9, 2.0);
        assert_eq!(failures.len(), 2, "one failure per allocator: {failures:?}");
    }

    #[test]
    fn ratio_gate_skipped_across_different_cpu_counts() {
        // Baseline from a 1-core box, current from a 4-core runner:
        // the thread-speedup ratio is not comparable, so a "regression"
        // must not fire — but the absolute multi-core floor still does.
        let single = ALLOC.replace("\"cpus\": 4", "\"cpus\": 1");
        let base = parse(&single).unwrap();
        let mut cur = parse(ALLOC).unwrap();
        for e in &mut cur.entries {
            e.speedup = 0.5; // would trip the ratio gate if armed
        }
        let failures = check(&base, &cur, 0.9, 2.0);
        assert_eq!(failures.len(), 2, "{failures:?}"); // one per allocator
        assert!(failures.iter().all(|f| f.contains("below the 2x floor")));
    }

    #[test]
    fn absolute_gate_fails_below_floor_on_multicore() {
        let base = parse(ALLOC).unwrap();
        let mut cur = base.clone();
        // Largest metis entry sinks below the 2.3x floor while staying
        // above the (loosened) regression ratio floor.
        cur.entries[1].speedup = 2.2;
        let failures = check(&base, &cur, 0.8, 2.3);
        assert_eq!(failures.len(), 1);
        assert!(failures[0].contains("below the 2.3x floor"), "{failures:?}");
    }

    #[test]
    fn absolute_gate_skipped_on_single_cpu() {
        let single = ALLOC.replace("\"cpus\": 4", "\"cpus\": 1");
        let base = parse(&single).unwrap();
        let mut cur = base.clone();
        for e in &mut cur.entries {
            e.speedup = 1.0; // no thread speedup on one core
        }
        for e in &mut cur.entries {
            // Keep the ratio gate out of the way for this test.
            e.speedup = e.speedup.max(1.0);
        }
        let mut base_flat = base.clone();
        for e in &mut base_flat.entries {
            e.speedup = 1.0;
        }
        assert!(check(&base_flat, &cur, 0.9, 2.0).is_empty());
    }

    #[test]
    fn absolute_gate_skipped_on_two_cpus() {
        // A 2-cpu runner cannot hit a healthy floor (the sequential
        // commit walk caps the speedup), so the gate must not arm.
        let dual = ALLOC.replace("\"cpus\": 4", "\"cpus\": 2");
        let base = parse(&dual).unwrap();
        let mut cur = base.clone();
        for e in &mut cur.entries {
            e.speedup = 1.0;
        }
        let mut base_flat = base.clone();
        for e in &mut base_flat.entries {
            e.speedup = 1.0;
        }
        assert!(check(&base_flat, &cur, 0.9, 1.5).is_empty());
    }

    #[test]
    fn summary_table_renders_all_rows() {
        let f = parse(ALLOC).unwrap();
        let md = summary_markdown(&f, &f);
        assert!(md.contains("### `allocators_parallel`"), "{md}");
        assert!(md.contains("4 workers on 4 cpus"), "{md}");
        // One row per entry, with measured times and a 1.00 ratio.
        assert_eq!(md.matches("| 1.00 |").count(), 3, "{md}");
        assert!(
            md.contains("| metis/24000 | 200.0 | 80.0 | 2.50× | 2.50× | 1.00 |"),
            "{md}"
        );
        // The graph shape maps rebuild/delta onto the same columns.
        let g = parse(GRAPH).unwrap();
        let gmd = summary_markdown(&g, &g);
        assert!(
            gmd.contains("| @64 | 37.9 | 8.0 | 4.72× | 4.72× | 1.00 |"),
            "{gmd}"
        );
    }

    #[test]
    fn shape_changes_are_loud() {
        let base = parse(ALLOC).unwrap();
        let mut cur = base.clone();
        cur.entries.pop();
        let failures = check(&base, &cur, 0.9, 2.0);
        assert!(failures[0].contains("entry count changed"), "{failures:?}");
        let graph = parse(GRAPH).unwrap();
        let failures = check(&base, &graph, 0.9, 2.0);
        assert!(failures[0].contains("bench mismatch"), "{failures:?}");
    }
}
