//! Regenerates Table III: average workload deviation.

use mosaic_bench::scenario_from_args;
use mosaic_sim::{experiments, Scenario};

fn main() {
    let scenario = scenario_from_args("Table III: workload deviation", Scenario::effectiveness);
    let cells = experiments::run_scenario(&scenario);
    println!("{}", experiments::table3(&cells));
}
