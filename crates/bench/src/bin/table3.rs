//! Regenerates Table III: average workload deviation.

use mosaic_bench::scale_from_env;
use mosaic_sim::experiments;

fn main() {
    let scale = scale_from_env("Table III: workload deviation");
    let cells = experiments::effectiveness_grid(&scale);
    println!("{}", experiments::table3(&cells));
}
