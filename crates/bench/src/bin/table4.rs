//! Regenerates Table IV: average running time (seconds) and input size.

use mosaic_bench::scenario_from_args;
use mosaic_sim::{experiments, Scenario};

fn main() {
    let scenario = scenario_from_args(
        "Table IV: running time and input data size",
        Scenario::effectiveness,
    );
    let cells = experiments::run_scenario(&scenario);
    println!("{}", experiments::table4(&cells));
}
