//! Regenerates Table IV: average running time (seconds) and input size.

use mosaic_bench::scale_from_env;
use mosaic_sim::experiments;

fn main() {
    let scale = scale_from_env("Table IV: running time and input data size");
    let cells = experiments::effectiveness_grid(&scale);
    println!("{}", experiments::table4(&cells));
}
