//! Regenerates Figure 1: the six-axis radar comparison (normalised
//! [1, 5] series for TxAllo vs Mosaic vs hash-based).

use mosaic_bench::scale_from_env;
use mosaic_sim::experiments;

fn main() {
    let scale = scale_from_env("Figure 1: efficiency/effectiveness radar");
    let cells = experiments::effectiveness_grid(&scale);
    println!("{}", experiments::fig1(&cells, &scale));
}
