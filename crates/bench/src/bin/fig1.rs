//! Regenerates Figure 1: the six-axis radar comparison (normalised
//! [1, 5] series for TxAllo vs Mosaic vs hash-based).

use mosaic_bench::scenario_from_args;
use mosaic_sim::{experiments, Scenario};

fn main() {
    let scenario = scenario_from_args(
        "Figure 1: efficiency/effectiveness radar",
        Scenario::effectiveness,
    );
    let cells = experiments::run_scenario(&scenario);
    println!("{}", experiments::fig1(&cells, &scenario));
}
