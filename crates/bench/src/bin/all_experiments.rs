//! Runs the effectiveness grid once and regenerates every table and
//! figure of the paper from it (the efficient path — the per-table
//! binaries re-run the grid each time).

use mosaic_bench::scale_from_env;
use mosaic_sim::experiments;

fn main() {
    let scale = scale_from_env("All experiments (Tables I-VI, Figure 1)");
    let cells = experiments::effectiveness_grid(&scale);

    println!("--- Table I: cross-shard transaction ratio ---");
    println!("{}", experiments::table1(&cells));
    println!("--- Table II: normalized throughput (Lambda/lambda) ---");
    println!("{}", experiments::table2(&cells));
    println!("--- Table III: workload deviation ---");
    println!("{}", experiments::table3(&cells));
    println!("--- Table IV: running time (s) and input data size ---");
    println!("{}", experiments::table4(&cells));
    println!("--- Table V: future knowledge (beta sweep, k = 4) ---");
    println!("{}", experiments::table5(&scale));
    println!("--- Table VI: framework comparison (measured) ---");
    println!("{}", experiments::table6(&cells, &scale));
    println!("--- Figure 1: radar series (normalised 1..5) ---");
    println!("{}", experiments::fig1(&cells, &scale));
}
