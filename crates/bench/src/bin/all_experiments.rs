//! Runs the effectiveness grid once and regenerates every table and
//! figure of the paper from it (the efficient path — the per-table
//! binaries re-run the grid each time). The β sweep of Table V is
//! derived from the same scenario (k = 4 base, β axis, Mosaic only) and
//! runs over the *same* materialised trace, so a single `--scenario`
//! file drives the whole report with one trace generation.

use mosaic_bench::scenario_from_args;
use mosaic_sim::{experiments, GridAxis, Scenario, Simulation, Strategy};

fn main() {
    let scenario = scenario_from_args(
        "All experiments (Tables I-VI, Figure 1)",
        Scenario::effectiveness,
    );
    let session = Simulation::from_scenario(scenario.clone()).unwrap_or_else(|e| {
        eprintln!("failed to materialise scenario: {e}");
        std::process::exit(2);
    });
    let cells = session
        .run()
        .unwrap_or_else(|e| {
            eprintln!("scenario run failed: {e}");
            std::process::exit(1);
        })
        .cells;
    let beta_sweep = Scenario {
        name: format!("{}-beta-sweep", scenario.name),
        base: scenario
            .base
            .with_shards(4)
            .expect("4 shards is always valid"),
        grid: vec![GridAxis::Beta(vec![0.0, 0.25, 0.5, 0.75, 1.0])],
        strategies: vec![Strategy::Mosaic],
        ..scenario.clone()
    };
    let beta_cells = Simulation::with_trace(beta_sweep, session.trace())
        .expect("the derived beta sweep stays valid")
        .run()
        .unwrap_or_else(|e| {
            eprintln!("beta sweep failed: {e}");
            std::process::exit(1);
        })
        .cells;

    println!("--- Table I: cross-shard transaction ratio ---");
    println!("{}", experiments::table1(&cells));
    println!("--- Table II: normalized throughput (Lambda/lambda) ---");
    println!("{}", experiments::table2(&cells));
    println!("--- Table III: workload deviation ---");
    println!("{}", experiments::table3(&cells));
    println!("--- Table IV: running time (s) and input data size ---");
    println!("{}", experiments::table4(&cells));
    println!("--- Table V: future knowledge (beta sweep, k = 4) ---");
    println!("{}", experiments::table5_from(&beta_cells));
    println!("--- Table VI: framework comparison (measured) ---");
    println!("{}", experiments::table6(&cells, &scenario));
    println!("--- Figure 1: radar series (normalised 1..5) ---");
    println!("{}", experiments::fig1(&cells, &scenario));
}
