//! Policy ablation (beyond the paper): Pilot versus its single-signal
//! components (interaction-only, workload-only) and a never-migrate
//! baseline.

use mosaic_bench::scale_from_env;
use mosaic_sim::experiments;

fn main() {
    let scale = scale_from_env("Ablations (k = 16)");
    println!("--- Client policy components ---");
    println!("{}", experiments::policy_ablation(&scale));
    println!("--- Beacon migration-capacity bound ---");
    println!("{}", experiments::capacity_ablation(&scale));
    println!("--- Churn sensitivity (new-account arrival rate) ---");
    println!("{}", experiments::churn_ablation(&scale));
}
