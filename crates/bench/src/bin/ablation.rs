//! Policy ablation (beyond the paper): Pilot versus its single-signal
//! components (interaction-only, workload-only) and a never-migrate
//! baseline, plus the beacon-capacity and churn ablations — all derived
//! from one base scenario, the first two sharing one materialised
//! trace (churn needs fresh traces per arrival rate).

use mosaic_bench::scenario_from_args;
use mosaic_sim::{experiments, Simulation};

fn main() {
    let scenario = scenario_from_args("Ablations (k = 16)", experiments::ablation_base);
    let session = Simulation::from_scenario(scenario.clone()).unwrap_or_else(|e| {
        eprintln!("failed to materialise scenario: {e}");
        std::process::exit(2);
    });
    println!("--- Client policy components ---");
    println!("{}", experiments::policy_ablation(&session));
    println!("--- Beacon migration-capacity bound ---");
    println!("{}", experiments::capacity_ablation(&session));
    println!("--- Churn sensitivity (new-account arrival rate) ---");
    println!("{}", experiments::churn_ablation(&scenario));
}
