//! **Mosaic** — a client-driven account allocation framework for sharded
//! blockchains, with its full evaluation substrate.
//!
//! This is the facade crate of the workspace: it re-exports every
//! component so applications can depend on a single crate. The
//! implementation reproduces *"Mosaic: Client-driven Account Allocation
//! Framework in Sharded Blockchains"* (ICDCS 2025) from scratch:
//!
//! | Module | Contents |
//! |---|---|
//! | [`types`] | ids, transactions, ϕ, parameters, SHA-256/FNV |
//! | [`workload`] | synthetic Ethereum-like trace generator + CSV I/O |
//! | [`txgraph`] | account-interaction graph (builder, CSR, analysis) |
//! | [`partition`] | hash-based allocation + multilevel Metis-like partitioner |
//! | [`txallo`] | G-TxAllo / A-TxAllo baselines (ICDE'23, reimplemented) |
//! | [`chain`] | shard chains, beacon chain, miners, reconfiguration |
//! | [`core`] | **the paper's contribution**: Mosaic framework + Pilot |
//! | [`metrics`] | cross-shard ratio, workload deviation, throughput |
//! | [`sim`] | the unified epoch engine + experiment runner regenerating Tables I–VI & Fig. 1 |
//! | [`node`] | the live TCP service + typed client (`MosaicClient`), line & binary codecs |
//! | [`telemetry`] | zero-interference counters/gauges/histograms/spans, JSONL + Prometheus export |
//!
//! # Quickstart
//!
//! ```
//! use mosaic::prelude::*;
//!
//! # fn main() -> Result<(), mosaic::types::Error> {
//! // A tiny sharded system with 4 shards.
//! let params = SystemParams::builder().shards(4).tau(50).build()?;
//! let trace = generate(&WorkloadConfig::small_test(7)).into_trace();
//!
//! // Initial allocation from the training prefix, then run Mosaic.
//! let (train, _eval) = trace.split_at_fraction(0.9);
//! let mut builder = GraphBuilder::new();
//! builder.add_transactions(train);
//! let phi = GTxAllo::default().allocate(&builder.build(), 4);
//!
//! let mut ledger = Ledger::new(params, phi, 8)?;
//! let mut mosaic = MosaicFramework::new(params);
//! mosaic.observe_epoch(train);
//!
//! for window in trace.epoch_windows(BlockHeight::new(1800), 50).take(4) {
//!     let (outcome, _report) = mosaic.run_epoch(&mut ledger, window);
//!     assert!(outcome.load.cross_ratio() <= 1.0);
//! }
//! # Ok(())
//! # }
//! ```
//!
//! # Extending the evaluation: `EpochStrategy`
//!
//! Every allocation mechanism — client-driven Mosaic, the miner-driven
//! TxAllo/Metis baselines, static hashing — runs through **one** epoch
//! pipeline behind the [`sim::engine::EpochStrategy`] trait. A strategy
//! provides its initial allocation from the training prefix, a
//! per-epoch `before_epoch` hook returning an
//! [`sim::engine::EpochDecision`] (a replacement ϕ, or migration
//! requests already submitted to the beacon, plus timing and input-size
//! accounting), and an optional `after_epoch` observation hook. Any
//! [`partition::GlobalAllocator`] is an `EpochStrategy` for free via a
//! blanket impl.
//!
//! To evaluate a new mechanism, implement the trait and run it through
//! a [`sim::Simulation`] session ([`sim::Simulation::run_with_factory`])
//! — or add a [`sim::Strategy`]-registry entry ([`sim::Strategy::build`])
//! to put it in every table. Experiments themselves are declarative,
//! serializable [`sim::Scenario`] specs (checked in as `.scenario`
//! files under `scenarios/`): a scenario names the trace source, the
//! parameter grid, the strategy set, both parallelism levels and the
//! observer stack; the session materialises the trace **once**, shares
//! it across every grid cell behind an `Arc`, and runs the independent
//! cells on an order-stable worker pool ([`sim::parallel`]). Results
//! are deterministic and identical at every parallelism level.
//!
//! ```
//! use mosaic::prelude::*;
//! use mosaic::sim::{MosaicStrategy, Simulation};
//! use mosaic::workload::TraceSource;
//!
//! # fn main() -> Result<(), mosaic::types::Error> {
//! let scale = Scale::quick();
//! let scenario = Scenario::new(
//!     "custom-policy",
//!     TraceSource::Generated(scale.workload.clone()),
//!     scale.eval_epochs,
//! )
//! .with_base(SystemParams::builder().shards(4).tau(scale.tau).build()?)
//! .with_strategies([Strategy::Mosaic]);
//!
//! // Any ClientPolicy slots into the client-driven wrapper; any custom
//! // EpochStrategy impl can be driven the same way.
//! let report = Simulation::from_scenario(scenario)?.run_with_factory(|cell| {
//!     Box::new(MosaicStrategy::new(
//!         cell.config.params,
//!         mosaic::core::policy::PilotPolicy,
//!     ))
//! })?;
//! assert_eq!(report.cells[0].result.per_epoch.len(), scale.eval_epochs);
//! # Ok(())
//! # }
//! ```

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub use mosaic_chain as chain;
pub use mosaic_core as core;
pub use mosaic_metrics as metrics;
pub use mosaic_node as node;
pub use mosaic_partition as partition;
pub use mosaic_sim as sim;
pub use mosaic_telemetry as telemetry;
pub use mosaic_txallo as txallo;
pub use mosaic_txgraph as txgraph;
pub use mosaic_types as types;
pub use mosaic_workload as workload;

/// The most common imports, bundled.
pub mod prelude {
    pub use mosaic_chain::{BeaconChain, Ledger, MinerSet, ShardChain};
    pub use mosaic_core::{
        Client, CounterpartySet, MosaicFramework, Pilot, PilotDecision, PilotInput, WorkloadOracle,
    };
    pub use mosaic_metrics::{Aggregate, EpochLoad, EpochMetrics, LoadParams, TextTable};
    pub use mosaic_node::{MosaicClient, Request, Response, Wire};
    pub use mosaic_partition::{GlobalAllocator, HashAllocator, MetisPartitioner};
    pub use mosaic_sim::{
        EpochStrategy, ExperimentConfig, ExperimentResult, Parallelism, Scale, Scenario,
        Simulation, Strategy,
    };
    pub use mosaic_txallo::{ATxAllo, GTxAllo, TxAlloConfig};
    pub use mosaic_txgraph::{GraphBuilder, TxGraph};
    pub use mosaic_types::{
        AccountId, AccountShardMap, BlockHeight, EpochId, MigrationRequest, ShardId, SystemParams,
        Transaction, TxId,
    };
    pub use mosaic_workload::{generate, TransactionTrace, WorkloadConfig};
}
