//! Head-to-head comparison of all five allocation strategies on the same
//! synthetic trace — a miniature of the paper's Tables I–IV, expressed
//! as one declarative [`Scenario`] run by a [`Simulation`] session.
//!
//! ```text
//! cargo run --release --example allocation_showdown
//! MOSAIC_SCALE=default cargo run --release --example allocation_showdown
//! cargo run --release --example allocation_showdown -- scenarios/quick.scenario
//! ```

use mosaic::prelude::*;
use mosaic::sim::{ObserverSpec, Scenario, Simulation};
use mosaic::workload::TraceSource;

fn main() -> Result<(), mosaic::types::Error> {
    // The experiment as data: either a .scenario file from the command
    // line, or an 8-shard single-point spec at the MOSAIC_SCALE scale.
    let scenario = match std::env::args().nth(1) {
        Some(path) => Scenario::load(path)?.with_observers([ObserverSpec::Collect]),
        None => {
            let scale = Scale::from_env();
            Scenario::new(
                "allocation-showdown",
                TraceSource::Generated(scale.workload.clone()),
                scale.eval_epochs,
            )
            .with_base(
                SystemParams::builder()
                    .shards(8)
                    .eta(2.0)
                    .tau(scale.tau)
                    .build()?,
            )
        }
    };
    let workload = scenario.workload().cloned();
    let session = Simulation::from_scenario(scenario)?;
    if let Some(w) = &workload {
        println!("workload: {} txs over {} blocks", w.total_txs(), w.blocks);
    }
    let report = session.run()?;

    let mut table = TextTable::new([
        "strategy",
        "cross-ratio",
        "throughput",
        "deviation",
        "alloc time/epoch",
        "input bytes",
        "migrations",
    ]);
    let label = report.labels().into_iter().next().expect("one point");
    for strategy in Strategy::ALL {
        let Some(r) = report.find(&label, strategy) else {
            continue;
        };
        table.push_row([
            r.strategy.name().to_string(),
            format!("{:.2}%", r.aggregate.cross_ratio * 100.0),
            format!("{:.2}", r.aggregate.normalized_throughput),
            format!("{:.2}", r.aggregate.workload_deviation),
            format!("{:.2e} s", r.mean_alloc_seconds),
            mosaic::metrics::data_size::human_bytes(r.mean_input_bytes),
            format!("{}", r.total_migrations),
        ]);
    }
    println!("{table}");

    // The same speed story as Table IV, phrased as a ratio.
    if let (Some(pilot), Some(gtxallo)) = (
        report.find(&label, Strategy::Mosaic),
        report.find(&label, Strategy::GTxAllo),
    ) {
        if pilot.mean_alloc_seconds > 0.0 {
            println!(
                "Pilot is {:.0}x faster per decision than G-TxAllo per epoch \
                 ({:.2e} s vs {:.2e} s), using {:.0}x less input",
                gtxallo.mean_alloc_seconds / pilot.mean_alloc_seconds,
                pilot.mean_alloc_seconds,
                gtxallo.mean_alloc_seconds,
                gtxallo.mean_input_bytes / pilot.mean_input_bytes.max(1.0),
            );
        }
    }
    Ok(())
}
