//! Head-to-head comparison of all five allocation strategies on the same
//! synthetic trace — a miniature of the paper's Tables I–IV.
//!
//! ```text
//! cargo run --release --example allocation_showdown
//! MOSAIC_SCALE=default cargo run --release --example allocation_showdown
//! ```

use mosaic::prelude::*;
use mosaic::sim::{experiments, runner};

fn main() {
    let scale = Scale::from_env();
    println!(
        "scale: {} ({} txs over {} blocks)",
        scale.label,
        scale.workload.total_txs(),
        scale.workload.blocks
    );
    let trace = generate(&scale.workload).into_trace();

    let params = SystemParams::builder()
        .shards(8)
        .eta(2.0)
        .tau(scale.tau)
        .build()
        .expect("valid params");

    let results = experiments::run_strategies(&trace, params, scale.eval_epochs, &Strategy::ALL);

    let mut table = TextTable::new([
        "strategy",
        "cross-ratio",
        "throughput",
        "deviation",
        "alloc time/epoch",
        "input bytes",
        "migrations",
    ]);
    for r in &results {
        table.push_row([
            r.strategy.name().to_string(),
            format!("{:.2}%", r.aggregate.cross_ratio * 100.0),
            format!("{:.2}", r.aggregate.normalized_throughput),
            format!("{:.2}", r.aggregate.workload_deviation),
            format!("{:.2e} s", r.mean_alloc_seconds),
            mosaic::metrics::data_size::human_bytes(r.mean_input_bytes),
            format!("{}", r.total_migrations),
        ]);
    }
    println!("{table}");

    // The same speed story as Table IV, phrased as a ratio.
    let pilot = results
        .iter()
        .find(|r| r.strategy == Strategy::Mosaic)
        .expect("mosaic present");
    let gtxallo = results
        .iter()
        .find(|r| r.strategy == Strategy::GTxAllo)
        .expect("g-txallo present");
    if pilot.mean_alloc_seconds > 0.0 {
        println!(
            "Pilot is {:.0}x faster per decision than G-TxAllo per epoch \
             ({:.2e} s vs {:.2e} s), using {:.0}x less input",
            gtxallo.mean_alloc_seconds / pilot.mean_alloc_seconds,
            pilot.mean_alloc_seconds,
            gtxallo.mean_alloc_seconds,
            gtxallo.mean_input_bytes / pilot.mean_input_bytes.max(1.0),
        );
    }
    // Keep the unused-variable lint honest about runner re-exports.
    let _ = runner::ExperimentConfig::new(params, Strategy::Random, 1);
}
