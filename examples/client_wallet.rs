//! A single client's view of Mosaic: the wallet-local state, the fused
//! interaction distribution Ψ, the downloaded workload vector Ω, the
//! Pilot decision, and the input-size accounting that makes the whole
//! computation hundreds of bytes instead of gigabytes.
//!
//! ```text
//! cargo run --release --example client_wallet
//! ```

use mosaic::prelude::*;
use mosaic::sim::{Scenario, Simulation};
use mosaic::workload::TraceSource;

fn main() -> Result<(), mosaic::types::Error> {
    let params = SystemParams::builder().shards(4).eta(2.0).build()?;
    let k = params.shards();

    // The public allocation ϕ (every miner and client can resolve it).
    let mut phi = AccountShardMap::new(k);
    let me = AccountId::new(1000);
    phi.assign(me, ShardId::new(3))?;
    // A few well-known counterparties.
    let dex = AccountId::new(1);
    let friend = AccountId::new(2);
    let employer = AccountId::new(3);
    phi.assign(dex, ShardId::new(0))?;
    phi.assign(friend, ShardId::new(0))?;
    phi.assign(employer, ShardId::new(1))?;

    // The wallet records only the client's own committed transactions.
    let mut wallet = Client::new(me);
    let mut block = 0u64;
    let mut tx_id = 0u64;
    let mut record = |wallet: &mut Client, from: AccountId, to: AccountId| {
        let tx = Transaction::new(TxId::new(tx_id), from, to, BlockHeight::new(block));
        wallet.observe(&tx);
        tx_id += 1;
        block += 1;
    };
    for _ in 0..6 {
        record(&mut wallet, me, dex); // trades on a shard-0 DEX
    }
    for _ in 0..3 {
        record(&mut wallet, friend, me); // friend also lives in shard 0
    }
    record(&mut wallet, employer, me); // salary from shard 1

    // The client also *knows* some future activity: a planned purchase
    // from a shard-1 merchant.
    let merchant = AccountId::new(4);
    phi.assign(merchant, ShardId::new(1))?;
    wallet.expect_interaction(merchant, 2);

    // Ω comes from a public mempool-analysis platform (Etherscan-like).
    let omega = vec![120.0, 80.0, 100.0, 140.0];

    println!(
        "wallet history: {} interactions with {} counterparties",
        wallet.history().total(),
        wallet.history().distinct()
    );
    println!("Ψ (β = 0, history only)   = {:?}", wallet.psi(&phi, 0.0));
    println!("Ψ (β = 0.5, fused)        = {:?}", wallet.psi(&phi, 0.5));
    println!("Ω (downloaded, {} bytes)  = {omega:?}", omega.len() * 8);

    let decision = wallet.decide(&phi, &omega, &params);
    println!(
        "Pilot: currently in {}, best shard {} (potential {:.2} vs {:.2}, gain {:.2})",
        decision.current,
        decision.target,
        decision.target_potential,
        decision.current_potential,
        decision.gain,
    );

    if let Some(mr) = wallet.migration_request(&phi, &omega, &params, EpochId::new(7))? {
        println!("submitting to beacon chain: {mr}");
    }

    println!(
        "total Pilot input: {} bytes (vs a {}-GB ledger for miner-driven methods)",
        wallet.input_size_bytes(k),
        1.44,
    );

    // Zoom out: every client on a synthetic network running this exact
    // wallet logic — one single-point scenario, Mosaic only.
    let scale = Scale::quick();
    let scenario = Scenario::new(
        "client-wallet-network",
        TraceSource::Generated(scale.workload.clone()),
        scale.eval_epochs,
    )
    .with_base(
        SystemParams::builder()
            .shards(4)
            .eta(2.0)
            .tau(scale.tau)
            .build()?,
    )
    .with_strategies([Strategy::Mosaic]);
    let report = Simulation::from_scenario(scenario)?.run()?;
    let r = &report.cells[0].result;
    println!(
        "network-wide, every wallet deciding like this one: cross-ratio {:.2}%, \
         mean Pilot input {} per client",
        r.aggregate.cross_ratio * 100.0,
        mosaic::metrics::data_size::human_bytes(r.mean_input_bytes),
    );
    Ok(())
}
