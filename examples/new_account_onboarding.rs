//! The "allocation of new accounts" side benefit (§VI): a brand-new
//! account — invisible to every graph-based miner-driven method — places
//! itself sensibly using only public information and its own plans.
//!
//! ```text
//! cargo run --release --example new_account_onboarding
//! ```

use mosaic::prelude::*;
use mosaic::sim::{GridAxis, Scenario, Simulation};
use mosaic::workload::TraceSource;

fn main() -> Result<(), mosaic::types::Error> {
    let params = SystemParams::builder().shards(4).eta(2.0).build()?;
    let k = params.shards();
    let phi = {
        // A populated system: accounts 0..99 spread by hash.
        let mut phi = AccountShardMap::new(k);
        for a in 0..100u64 {
            let shard = phi.shard_of(AccountId::new(a)); // hash rule
            phi.assign(AccountId::new(a), shard)?;
        }
        phi
    };
    // The public workload vector: shard S2 is quiet today.
    let omega = vec![900.0, 700.0, 300.0, 800.0];

    // Case 1: a genuinely fresh account with no plans. Graph-based
    // methods cannot place it (it is not in any historical graph);
    // under Mosaic it self-allocates to the least-loaded shard.
    let newcomer = Client::new(AccountId::new(5000));
    let d = newcomer.decide(&phi, &omega, &params);
    println!(
        "fresh account with no history: {} -> {} (workload-driven)",
        d.current, d.target
    );
    assert_eq!(d.target, ShardId::new(2));

    // Case 2: a new account that *knows its future*: it is a shop about
    // to onboard with a payment processor living in shard S4.
    let processor = AccountId::new(7);
    let mut shop = Client::new(AccountId::new(5001));
    shop.expect_interaction(processor, 20);
    let params_with_knowledge = params.with_beta(1.0)?;
    let d = shop.decide(&phi, &omega, &params_with_knowledge);
    println!(
        "new shop expecting 20 txs with {} (in {}): {} -> {}",
        processor,
        phi.shard_of(processor),
        d.current,
        d.target
    );
    assert_eq!(d.target, phi.shard_of(processor));

    // Either way the request is a single beacon-chain transaction.
    if let Some(mr) =
        shop.migration_request(&phi, &omega, &params_with_knowledge, EpochId::new(0))?
    {
        println!("beacon submission: {mr}");
    }
    println!(
        "input used: {} bytes (vs the full historical graph for Metis/TxAllo)",
        shop.input_size_bytes(k)
    );

    // At scale: crank up account churn (4 brand-new accounts per block)
    // and compare uninformed newcomers (β = 0) against newcomers that
    // self-place from their plans (β = 1) — one scenario, one shared
    // trace, two cells.
    let scale = Scale::quick();
    let scenario = Scenario::new(
        "onboarding-under-churn",
        TraceSource::Generated(scale.workload.clone().with_churn(4.0)),
        scale.eval_epochs,
    )
    .with_base(
        SystemParams::builder()
            .shards(4)
            .eta(2.0)
            .tau(scale.tau)
            .build()?,
    )
    .with_axis(GridAxis::Beta(vec![0.0, 1.0]))
    .with_strategies([Strategy::Mosaic]);
    let report = Simulation::from_scenario(scenario)?.run()?;
    let (blind, informed) = (&report.cells[0].result, &report.cells[1].result);
    println!(
        "under heavy churn, informed self-placement moves the network-wide \
         cross-ratio from {:.2}% (β = 0) to {:.2}% (β = 1)",
        blind.aggregate.cross_ratio * 100.0,
        informed.aggregate.cross_ratio * 100.0,
    );
    Ok(())
}
