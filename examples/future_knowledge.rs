//! The Table V experiment as a demo: how much does knowing a fraction β
//! of your future transactions improve your allocation? One scenario
//! with a β grid axis — the trace is generated once and shared across
//! all five cells by the [`Simulation`] session.
//!
//! ```text
//! cargo run --release --example future_knowledge
//! ```

use mosaic::prelude::*;
use mosaic::sim::{GridAxis, Scenario, Simulation};
use mosaic::workload::TraceSource;

fn main() -> Result<(), mosaic::types::Error> {
    let scale = Scale::quick();
    let scenario = Scenario::new(
        "future-knowledge",
        TraceSource::Generated(scale.workload.clone()),
        scale.eval_epochs,
    )
    .with_base(
        SystemParams::builder()
            .shards(4)
            .eta(2.0)
            .tau(scale.tau)
            .build()?,
    )
    .with_axis(GridAxis::Beta(vec![0.0, 0.25, 0.5, 0.75, 1.0]))
    .with_strategies([Strategy::Mosaic]);

    let report = Simulation::from_scenario(scenario)?.run()?;

    let mut table = TextTable::new(["beta", "cross-ratio", "throughput", "deviation"]);
    for cell in &report.cells {
        table.push_row([
            cell.param_label.clone(),
            format!("{:.2}%", cell.result.aggregate.cross_ratio * 100.0),
            format!("{:.2}", cell.result.aggregate.normalized_throughput),
            format!("{:.2}", cell.result.aggregate.workload_deviation),
        ]);
    }
    println!("{table}");
    println!(
        "Future knowledge is exploitable but not mandatory: β = 0 (the worst\n\
         case, no knowledge at all) is the configuration every headline\n\
         result of the paper is reported under."
    );
    Ok(())
}
