//! The Table V experiment as a demo: how much does knowing a fraction β
//! of your future transactions improve your allocation?
//!
//! ```text
//! cargo run --release --example future_knowledge
//! ```

use mosaic::prelude::*;
use mosaic::sim::runner;

fn main() -> Result<(), mosaic::types::Error> {
    let scale = Scale::quick();
    let trace = generate(&scale.workload).into_trace();

    let mut table = TextTable::new(["beta", "cross-ratio", "throughput", "deviation"]);
    for beta in [0.0, 0.25, 0.5, 0.75, 1.0] {
        let params = SystemParams::builder()
            .shards(4)
            .eta(2.0)
            .tau(scale.tau)
            .beta(beta)
            .build()?;
        let config = ExperimentConfig::new(params, Strategy::Mosaic, scale.eval_epochs);
        let result = runner::run(&config, &trace);
        table.push_row([
            format!("{beta}"),
            format!("{:.2}%", result.aggregate.cross_ratio * 100.0),
            format!("{:.2}", result.aggregate.normalized_throughput),
            format!("{:.2}", result.aggregate.workload_deviation),
        ]);
    }
    println!("{table}");
    println!(
        "Future knowledge is exploitable but not mandatory: β = 0 (the worst\n\
         case, no knowledge at all) is the configuration every headline\n\
         result of the paper is reported under."
    );
    Ok(())
}
