//! Quickstart: run the Mosaic framework end to end on a synthetic
//! workload and watch clients drive the allocation — first by hand
//! (every moving part visible), then as one declarative [`Scenario`].
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use mosaic::prelude::*;
use mosaic::sim::{Scenario, Simulation};
use mosaic::workload::TraceSource;

fn main() -> Result<(), mosaic::types::Error> {
    // A 4-shard system with the paper's default difficulty η = 2 and
    // short epochs so the demo finishes in seconds.
    let params = SystemParams::builder().shards(4).eta(2.0).tau(50).build()?;

    // Synthetic Ethereum-like trace: heavy-tailed activity, latent
    // communities, hub contracts, account churn.
    let workload = generate(&WorkloadConfig::small_test(42));
    let trace = workload.trace();
    println!(
        "workload: {} transactions, {} accounts, {} blocks",
        trace.len(),
        trace.account_count(),
        trace.max_block().map_or(0, |b| b.as_u64() + 1),
    );

    // 90% of the blocks bootstrap the system (initial allocation via
    // G-TxAllo, as in the paper); the rest is live evaluation.
    let (train, _eval) = trace.split_at_fraction(0.9);
    let cut = BlockHeight::new((trace.max_block().unwrap().as_u64() + 1) * 9 / 10);

    let mut builder = GraphBuilder::new();
    builder.add_transactions(train);
    let initial_phi = GTxAllo::default().allocate(&builder.build(), params.shards());

    let mut ledger = Ledger::new(params, initial_phi, 16)?;
    let mut mosaic = MosaicFramework::new(params);
    mosaic.observe_epoch(train);

    // Live epochs: clients run Pilot, propose migrations, the beacon
    // commits the best ones, and the ledger processes the traffic.
    let mut table = TextTable::new([
        "epoch",
        "txs",
        "cross-ratio",
        "throughput",
        "deviation",
        "proposed",
        "committed",
    ]);
    for (i, window) in trace.epoch_windows(cut, params.tau()).take(4).enumerate() {
        let (outcome, report) = mosaic.run_epoch(&mut ledger, window);
        table.push_row([
            format!("{i}"),
            format!("{}", outcome.load.total_txs()),
            format!("{:.1}%", outcome.load.cross_ratio() * 100.0),
            format!("{:.2}", outcome.load.normalized_throughput()),
            format!("{:.2}", outcome.load.workload_deviation()),
            format!("{}", report.proposed),
            format!("{}", outcome.committed.len()),
        ]);
    }
    println!("{table}");

    println!(
        "clients: {}   beacon blocks: {}   committed migrations: {}",
        mosaic.client_count(),
        ledger.beacon().len(),
        ledger.beacon().committed_len(),
    );
    println!(
        "all chains verify: {}",
        if ledger.verify_chains() { "yes" } else { "NO" }
    );

    // The same protocol, declaratively: one serializable spec drives
    // trace generation, the 90/10 split, initial allocation, the epoch
    // loop, and metric collection. Save it with `scenario.save(path)`
    // and replay it from any binary with `--scenario <path>`.
    let scale = Scale::quick();
    let scenario = Scenario::new(
        "quickstart",
        TraceSource::Generated(scale.workload.clone()),
        scale.eval_epochs,
    )
    .with_base(
        SystemParams::builder()
            .shards(4)
            .eta(2.0)
            .tau(scale.tau)
            .build()?,
    )
    .with_strategies([Strategy::Mosaic]);
    let report = Simulation::from_scenario(scenario)?.run()?;
    let r = &report.cells[0].result;
    println!(
        "\nthe same experiment as data ({} eval epochs via Scenario/Simulation):\n\
         cross-ratio {:.2}%, throughput {:.2}, deviation {:.2}, {} migrations",
        scale.eval_epochs,
        r.aggregate.cross_ratio * 100.0,
        r.aggregate.normalized_throughput,
        r.aggregate.workload_deviation,
        r.total_migrations,
    );
    Ok(())
}
