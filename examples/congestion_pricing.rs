//! Generalised fee schedules ξ = f(ω): §IV notes Pilot's linear pricing
//! is a simplification — "one can design a more specialized function f
//! for the specific needs of applications". This demo compares how the
//! same client decides under linear, superlinear, and EIP-1559-style
//! congestion pricing.
//!
//! ```text
//! cargo run --release --example congestion_pricing
//! ```

use mosaic::core::fees::{
    decide_with_schedule, AffineFee, Eip1559Fee, FeeSchedule, LinearFee, SuperlinearFee,
};
use mosaic::prelude::*;

fn main() {
    // A client whose interactions slightly favour the *hottest* shard:
    // the interesting regime where pricing decides.
    let psi = [6.0, 5.0, 1.0, 0.0];
    let omega = [400.0, 150.0, 120.0, 90.0];
    let eta = 2.0;
    let current = ShardId::new(2);

    let schedules: Vec<Box<dyn FeeSchedule>> = vec![
        Box::new(LinearFee),
        Box::new(AffineFee {
            base: 50.0,
            slope: 1.0,
        }),
        Box::new(SuperlinearFee::new(2.0)),
        Box::new(Eip1559Fee {
            base_fee: 100.0,
            target: 190.0,
            max_change: 4.0,
        }),
    ];

    let mut table = TextTable::new(["schedule", "prices ξ", "target", "gain"]);
    for schedule in &schedules {
        let xi = schedule.price_vector(&omega);
        let decision = decide_with_schedule(schedule.as_ref(), eta, &psi, &omega, current);
        table.push_row([
            schedule.name().to_string(),
            format!(
                "[{}]",
                xi.iter()
                    .map(|p| format!("{p:.0}"))
                    .collect::<Vec<_>>()
                    .join(", ")
            ),
            decision.target.to_string(),
            format!("{:.1}", decision.gain),
        ]);
    }
    println!("client Ψ = {psi:?}, Ω = {omega:?}, η = {eta}, currently in {current}");
    println!("{table}");
    println!(
        "Steeper congestion pricing shifts the decision away from hot\n\
         shards even when interactions mildly favour them — the knob a\n\
         deployment can use to trade locality against load spreading."
    );
}
