//! Generalised fee schedules ξ = f(ω): §IV notes Pilot's linear pricing
//! is a simplification — "one can design a more specialized function f
//! for the specific needs of applications". This demo compares how the
//! same client decides under linear, superlinear, and EIP-1559-style
//! congestion pricing, then runs each schedule **network-wide** as a
//! custom [`ClientPolicy`] through a [`Simulation`] session — four
//! strategy variants sharing one materialised trace.
//!
//! ```text
//! cargo run --release --example congestion_pricing
//! ```

use mosaic::core::fees::{
    decide_with_schedule, AffineFee, Eip1559Fee, FeeSchedule, LinearFee, SuperlinearFee,
};
use mosaic::core::policy::{ClientPolicy, PolicyContext};
use mosaic::prelude::*;
use mosaic::sim::{MosaicStrategy, Scenario, Simulation};
use mosaic::workload::TraceSource;

/// A Mosaic client whose Pilot prices congestion through an arbitrary
/// fee schedule — any [`FeeSchedule`] is a [`ClientPolicy`]. The
/// schedule sits behind an `Arc` so one instance serves every client
/// the session's strategy factory creates.
struct FeePolicy(std::sync::Arc<dyn FeeSchedule + Send + Sync>);

impl ClientPolicy for FeePolicy {
    fn name(&self) -> &'static str {
        "FeeSchedule"
    }

    fn choose(&self, ctx: &PolicyContext<'_>) -> (ShardId, f64) {
        let d = decide_with_schedule(self.0.as_ref(), ctx.eta, ctx.psi, ctx.omega, ctx.current);
        (d.target, d.gain)
    }
}

fn schedules() -> Vec<Box<dyn FeeSchedule + Send + Sync>> {
    vec![
        Box::new(LinearFee),
        Box::new(AffineFee {
            base: 50.0,
            slope: 1.0,
        }),
        Box::new(SuperlinearFee::new(2.0)),
        Box::new(Eip1559Fee {
            base_fee: 100.0,
            target: 190.0,
            max_change: 4.0,
        }),
    ]
}

fn main() -> Result<(), mosaic::types::Error> {
    // Part 1 — one client's view: how each schedule prices the same
    // slightly-hub-favouring interaction pattern.
    let psi = [6.0, 5.0, 1.0, 0.0];
    let omega = [400.0, 150.0, 120.0, 90.0];
    let eta = 2.0;
    let current = ShardId::new(2);

    let mut table = TextTable::new(["schedule", "prices ξ", "target", "gain"]);
    for schedule in &schedules() {
        let xi = schedule.price_vector(&omega);
        let decision = decide_with_schedule(schedule.as_ref(), eta, &psi, &omega, current);
        table.push_row([
            schedule.name().to_string(),
            format!(
                "[{}]",
                xi.iter()
                    .map(|p| format!("{p:.0}"))
                    .collect::<Vec<_>>()
                    .join(", ")
            ),
            decision.target.to_string(),
            format!("{:.1}", decision.gain),
        ]);
    }
    println!("client Ψ = {psi:?}, Ω = {omega:?}, η = {eta}, currently in {current}");
    println!("{table}");

    // Part 2 — every client on the network runs that schedule: one
    // single-point scenario per schedule, all sessions sharing the same
    // Arc'd trace (generated exactly once).
    let scale = Scale::quick();
    let scenario = Scenario::new(
        "congestion-pricing",
        TraceSource::Generated(scale.workload.clone()),
        scale.eval_epochs,
    )
    .with_base(
        SystemParams::builder()
            .shards(4)
            .eta(eta)
            .tau(scale.tau)
            .build()?,
    )
    .with_strategies([Strategy::Mosaic]);
    let first = Simulation::from_scenario(scenario.clone())?;
    let trace = first.trace();

    let mut table = TextTable::new(["schedule", "cross-ratio", "throughput", "deviation"]);
    for schedule in schedules() {
        let schedule: std::sync::Arc<dyn FeeSchedule + Send + Sync> =
            std::sync::Arc::from(schedule);
        let session = Simulation::with_trace(scenario.clone(), trace.clone())?;
        let report = session.run_with_factory(|cell| {
            Box::new(MosaicStrategy::new(
                cell.config.params,
                FeePolicy(std::sync::Arc::clone(&schedule)),
            ))
        })?;
        let r = &report.cells[0].result;
        table.push_row([
            schedule.name().to_string(),
            format!("{:.2}%", r.aggregate.cross_ratio * 100.0),
            format!("{:.2}", r.aggregate.normalized_throughput),
            format!("{:.2}", r.aggregate.workload_deviation),
        ]);
    }
    println!("network-wide, every client pricing congestion through the schedule:");
    println!("{table}");
    println!(
        "Steeper congestion pricing shifts decisions away from hot shards\n\
         even when interactions mildly favour them — the knob a deployment\n\
         can use to trade locality against load spreading."
    );
    Ok(())
}
